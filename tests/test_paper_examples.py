"""End-to-end checks of every worked example in the paper's text."""

import pytest

from repro import find_disjoint_cliques, is_maximal, verify_solution
from repro.cliques import build_clique_graph, node_scores
from repro.core.exact import exact_optimum
from tests.conftest import PAPER_TRIANGLES


V = {i: i - 1 for i in range(1, 12)}  # paper's 1-based node names


class TestExample1:
    """Fig. 2: seven triangles, a maximal S1 of size 2, a maximum of 3."""

    def test_s1_is_maximal_but_not_maximum(self, paper_graph):
        s1 = [
            {V[3], V[5], V[6]},   # C2
            {V[4], V[7], V[9]},   # C6
        ]
        verify_solution(paper_graph, 3, s1)
        assert is_maximal(paper_graph, 3, s1)
        assert exact_optimum(paper_graph, 3).size == 3  # S2 is larger

    def test_s2_is_maximum(self, paper_graph):
        s2 = [
            {V[1], V[3], V[6]},   # C1
            {V[5], V[7], V[8]},   # C4
            {V[2], V[4], V[9]},   # C7
        ]
        verify_solution(paper_graph, 3, s2)
        assert is_maximal(paper_graph, 3, s2)
        assert len(s2) == exact_optimum(paper_graph, 3).size

    def test_clique_graph_edge_c1_c2(self, paper_graph):
        # "C1 and C2 share the node v3 [and v6], resulting in an edge."
        cg = build_clique_graph(paper_graph, 3)
        index = {frozenset(c): i for i, c in enumerate(cg.cliques)}
        assert cg.graph.has_edge(index[PAPER_TRIANGLES[0]], index[PAPER_TRIANGLES[1]])


class TestExample3:
    """Node/clique scores of the running example."""

    def test_reported_scores(self, paper_graph):
        scores = node_scores(paper_graph, 3)
        assert scores[V[6]] == 3
        assert scores[V[5]] == 3
        assert scores[V[8]] == 3
        # s_c(C3) = s_n(v5) + s_n(v6) + s_n(v8) = 9.
        assert scores[V[5]] + scores[V[6]] + scores[V[8]] == 9

    def test_deg_c1_is_two(self, paper_graph):
        cg = build_clique_graph(paper_graph, 3)
        index = {frozenset(c): i for i, c in enumerate(cg.cliques)}
        assert cg.degree_of(index[PAPER_TRIANGLES[0]]) == 2


class TestLemma1:
    """A clique with >= k+1 clique-graph neighbours has two adjacent ones."""

    @pytest.mark.parametrize("k", [3, 4])
    def test_pigeonhole_structure(self, random_graphs, k):
        for g in random_graphs:
            cg = build_clique_graph(g, k)
            for i in range(cg.num_cliques):
                neighbours = sorted(cg.graph.neighbors(i))
                if len(neighbours) < k + 1:
                    continue
                found_adjacent_pair = any(
                    cg.graph.has_edge(a, b)
                    for x, a in enumerate(neighbours)
                    for b in neighbours[x + 1 :]
                )
                assert found_adjacent_pair


class TestTheorem3Tightness:
    """The k-approximation bound is attainable in structure."""

    def test_every_solver_within_k_of_opt(self, paper_graph):
        opt = exact_optimum(paper_graph, 3).size
        for method in ("hg", "gc", "l", "lp"):
            size = find_disjoint_cliques(paper_graph, 3, method=method).size
            assert opt <= 3 * size

    def test_lp_finds_maximum_on_paper_graph(self, paper_graph):
        # The score ordering recovers the maximum here.
        assert find_disjoint_cliques(paper_graph, 3, method="lp").size == 3
