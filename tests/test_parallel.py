"""Tests for the parallel HeapInit path of Algorithm 3."""

import multiprocessing

import pytest

import importlib

from repro.core.lightweight import lightweight

# The package re-exports the ``lightweight`` function under the same
# name, so fetch the module itself for monkeypatching.
lw = importlib.import_module("repro.core.lightweight")
from repro.graph.generators import erdos_renyi_gnp, powerlaw_cluster


class TestParallelHeapInit:
    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("k", [3, 4])
    def test_identical_to_sequential(self, workers, k):
        g = powerlaw_cluster(200, 5, 0.5, seed=3)
        sequential = lightweight(g, k, workers=1)
        parallel = lightweight(g, k, workers=workers)
        assert sequential.sorted_cliques() == parallel.sorted_cliques()

    def test_workers_zero_uses_cpu_count(self):
        g = erdos_renyi_gnp(60, 0.3, seed=1)
        result = lightweight(g, 3, workers=0)
        baseline = lightweight(g, 3, workers=1)
        assert result.sorted_cliques() == baseline.sorted_cliques()

    def test_small_graph_falls_back_to_sequential(self):
        g = erdos_renyi_gnp(3, 1.0, seed=0)
        assert lightweight(g, 3, workers=8).size == 1

    def test_prune_composes_with_parallel(self):
        g = powerlaw_cluster(150, 5, 0.6, seed=4)
        pruned = lightweight(g, 4, prune=True, workers=2)
        plain = lightweight(g, 4, prune=False, workers=2)
        assert pruned.sorted_cliques() == plain.sorted_cliques()

    @pytest.mark.parametrize("backend", ["sets", "csr"])
    def test_parallel_works_with_both_backends(self, backend):
        g = powerlaw_cluster(120, 5, 0.5, seed=9)
        sequential = lightweight(g, 3, workers=1, backend=backend)
        parallel = lightweight(g, 3, workers=3, backend=backend)
        assert sequential.sorted_cliques() == parallel.sorted_cliques()


class TestParallelStats:
    """Parallel HeapInit must report the same counters as sequential.

    Regression: ``findmin_calls`` used to be set to the number of heap
    entries (only roots that produced a clique) and every worker's
    ``branches_pruned`` was discarded, so the L/LP ablation counters
    depended on the worker count.
    """

    @pytest.mark.parametrize("prune", [False, True])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_stats_match_sequential(self, prune, workers):
        g = powerlaw_cluster(200, 5, 0.5, seed=6)
        sequential = lightweight(g, 4, prune=prune, workers=1)
        parallel = lightweight(g, 4, prune=prune, workers=workers)
        assert parallel.stats == sequential.stats

    def test_findmin_calls_count_eligible_roots_not_heap_entries(self):
        g = powerlaw_cluster(150, 4, 0.4, seed=8)
        result = lightweight(g, 4, workers=2)
        # Some eligible roots find no clique: calls must exceed pushes.
        assert result.stats["findmin_calls"] > result.stats["heap_pushes"]


class TestForkUnavailableFallback:
    """``workers > 1`` must not crash where fork is unavailable.

    Regression: ``multiprocessing.get_context("fork")`` raised
    ``ValueError`` on spawn-only platforms (Windows, macOS default).
    The guard checks ``get_all_start_methods()`` and falls back to the
    sequential HeapInit path.
    """

    def test_falls_back_to_sequential(self, monkeypatch):
        g = powerlaw_cluster(100, 4, 0.5, seed=2)
        baseline = lightweight(g, 3, workers=1)

        def no_fork_context(method=None):
            raise AssertionError(
                f"get_context({method!r}) must not be called without fork"
            )

        monkeypatch.setattr(
            lw.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        monkeypatch.setattr(lw.multiprocessing, "get_context", no_fork_context)
        result = lightweight(g, 3, workers=4)
        assert result.sorted_cliques() == baseline.sorted_cliques()
        assert result.stats == baseline.stats

    def test_parallel_path_still_used_when_fork_available(self, monkeypatch):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        g = powerlaw_cluster(100, 4, 0.5, seed=2)
        called = {}
        real = lw._parallel_heap_init

        def spy(state, n, workers, stats):
            called["workers"] = workers
            return real(state, n, workers, stats)

        monkeypatch.setattr(lw, "_parallel_heap_init", spy)
        lightweight(g, 3, workers=2)
        assert called["workers"] == 2
