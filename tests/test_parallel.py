"""Tests for the parallel HeapInit path of Algorithm 3."""

import multiprocessing

import pytest

import importlib

from repro.core.lightweight import lightweight

# The package re-exports the ``lightweight`` function under the same
# name, so fetch the module itself for monkeypatching.
lw = importlib.import_module("repro.core.lightweight")
from repro.graph.generators import erdos_renyi_gnp, powerlaw_cluster


class TestParallelHeapInit:
    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("k", [3, 4])
    def test_identical_to_sequential(self, workers, k):
        g = powerlaw_cluster(200, 5, 0.5, seed=3)
        sequential = lightweight(g, k, workers=1)
        parallel = lightweight(g, k, workers=workers)
        assert sequential.sorted_cliques() == parallel.sorted_cliques()

    def test_workers_zero_uses_cpu_count(self):
        g = erdos_renyi_gnp(60, 0.3, seed=1)
        result = lightweight(g, 3, workers=0)
        baseline = lightweight(g, 3, workers=1)
        assert result.sorted_cliques() == baseline.sorted_cliques()

    def test_small_graph_falls_back_to_sequential(self):
        g = erdos_renyi_gnp(3, 1.0, seed=0)
        assert lightweight(g, 3, workers=8).size == 1

    def test_prune_composes_with_parallel(self):
        g = powerlaw_cluster(150, 5, 0.6, seed=4)
        pruned = lightweight(g, 4, prune=True, workers=2)
        plain = lightweight(g, 4, prune=False, workers=2)
        assert pruned.sorted_cliques() == plain.sorted_cliques()

    @pytest.mark.parametrize("backend", ["sets", "csr"])
    def test_parallel_works_with_both_backends(self, backend):
        g = powerlaw_cluster(120, 5, 0.5, seed=9)
        sequential = lightweight(g, 3, workers=1, backend=backend)
        parallel = lightweight(g, 3, workers=3, backend=backend)
        assert sequential.sorted_cliques() == parallel.sorted_cliques()


class TestParallelStats:
    """Parallel HeapInit must report the same counters as sequential.

    Regression: ``findmin_calls`` used to be set to the number of heap
    entries (only roots that produced a clique) and every worker's
    ``branches_pruned`` was discarded, so the L/LP ablation counters
    depended on the worker count.
    """

    @pytest.mark.parametrize("prune", [False, True])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_stats_match_sequential(self, prune, workers):
        g = powerlaw_cluster(200, 5, 0.5, seed=6)
        sequential = lightweight(g, 4, prune=prune, workers=1)
        parallel = lightweight(g, 4, prune=prune, workers=workers)
        assert parallel.stats == sequential.stats

    def test_findmin_calls_count_eligible_roots_not_heap_entries(self):
        g = powerlaw_cluster(150, 4, 0.4, seed=8)
        result = lightweight(g, 4, workers=2)
        # Some eligible roots find no clique: calls must exceed pushes.
        assert result.stats["findmin_calls"] > result.stats["heap_pushes"]


class TestStartMethodPortability:
    """``workers > 1`` must work under every start method.

    The PR 2 implementation was fork-only (workers read the substrate
    from a copy-on-write module global) and silently fell back to
    sequential HeapInit elsewhere. The shared-memory tier has no such
    fallback: on a spawn-only platform the fan-out still runs, it just
    resolves a spawn context (see :mod:`repro.parallel.context`).
    """

    def test_spawn_only_platform_resolves_spawn(self, monkeypatch):
        from repro.parallel import context as ctx_mod

        monkeypatch.setattr(
            ctx_mod.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert ctx_mod.resolve_context("auto").get_start_method() == "spawn"

    def test_lightweight_no_longer_depends_on_fork_checks(self):
        # The engine module must not consult multiprocessing at all any
        # more — start-method policy lives in repro.parallel.context.
        assert not hasattr(lw, "multiprocessing")

    def test_parallel_tier_invoked_for_multi_worker_solves(self, monkeypatch):
        from repro.parallel import heapinit as hi

        g = powerlaw_cluster(100, 4, 0.5, seed=2)
        called = {}
        real = hi.parallel_heap_init

        def spy(**kwargs):
            called["workers"] = kwargs["workers"]
            return real(**kwargs)

        monkeypatch.setattr(hi, "parallel_heap_init", spy)
        lightweight(g, 3, workers=2)
        assert called["workers"] == 2

    def test_explicit_spawn_matches_sequential(self):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        from repro.parallel.heapinit import parallel_heap_init  # noqa: F401

        g = powerlaw_cluster(80, 4, 0.5, seed=2)
        baseline = lightweight(g, 3, workers=1)
        spawned = lightweight(g, 3, workers=2, start_method="spawn")
        assert spawned.sorted_cliques() == baseline.sorted_cliques()
        assert spawned.stats == baseline.stats
