"""Tests for the parallel HeapInit path of Algorithm 3."""

import pytest

from repro.core.lightweight import lightweight
from repro.graph.generators import erdos_renyi_gnp, powerlaw_cluster


class TestParallelHeapInit:
    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("k", [3, 4])
    def test_identical_to_sequential(self, workers, k):
        g = powerlaw_cluster(200, 5, 0.5, seed=3)
        sequential = lightweight(g, k, workers=1)
        parallel = lightweight(g, k, workers=workers)
        assert sequential.sorted_cliques() == parallel.sorted_cliques()

    def test_workers_zero_uses_cpu_count(self):
        g = erdos_renyi_gnp(60, 0.3, seed=1)
        result = lightweight(g, 3, workers=0)
        baseline = lightweight(g, 3, workers=1)
        assert result.sorted_cliques() == baseline.sorted_cliques()

    def test_small_graph_falls_back_to_sequential(self):
        g = erdos_renyi_gnp(3, 1.0, seed=0)
        assert lightweight(g, 3, workers=8).size == 1

    def test_prune_composes_with_parallel(self):
        g = powerlaw_cluster(150, 5, 0.6, seed=4)
        pruned = lightweight(g, 4, prune=True, workers=2)
        plain = lightweight(g, 4, prune=False, workers=2)
        assert pruned.sorted_cliques() == plain.sorted_cliques()
