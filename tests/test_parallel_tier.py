"""Tests for the process-parallel tier (:mod:`repro.parallel`).

Covers the SharedCSR shared-memory substrate lifecycle, the HeapInit
chunking regressions, solution/stat pinning of the process-parallel
solve paths against their sequential twins, checkpoint migration
(including bit-identity under the ``spawn`` start method), worker-death
recovery, and the scheduler's process lane.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from tests.conftest import brute_force_max_disjoint
from repro.core.exact_bb import exact_optimum_bb
from repro.core.session import Session
from repro.errors import InvalidParameterError
from repro.graph.generators import erdos_renyi_gnp, powerlaw_cluster
from repro.parallel import ProcessLaneTask, ProcessSolvePool, SharedCSR
from repro.parallel.bb import parallel_exact_bb
from repro.parallel.context import resolve_context
from repro.parallel.heapinit import MIN_CHUNK, chunk_spans, parallel_heap_init


def _ordered(result) -> list[tuple[int, ...]]:
    """Solution-order canonical form (pins order, not just content)."""
    return [tuple(sorted(c)) for c in result.cliques]


class TestSharedCSR:
    def test_roundtrip_values_and_layout(self):
        arrays = {
            "indptr": np.arange(5, dtype=np.int64),
            "cols": np.array([3, 1, 4, 1, 5], dtype=np.int64),
            "flags": np.array([True, False, True]),
        }
        handle = SharedCSR.create(arrays)
        try:
            desc = handle.descriptor()
            assert desc["segment"] == handle.segment
            attached = SharedCSR.attach(desc)
            try:
                assert sorted(attached.names()) == sorted(arrays)
                for name, expected in arrays.items():
                    got = attached.array(name)
                    assert got.dtype == expected.dtype
                    assert np.array_equal(got, expected)
                assert not attached.owner
            finally:
                attached.close()
        finally:
            handle.close()
            handle.unlink()

    def test_views_are_zero_copy(self):
        handle = SharedCSR.create({"a": np.arange(8, dtype=np.int64)})
        try:
            view = handle.array("a")
            assert view.base is not None  # backed by the segment buffer
            assert handle.array("a") is view  # cached, not rebuilt
        finally:
            handle.close()
            handle.unlink()

    def test_handle_refuses_to_pickle(self):
        import pickle

        handle = SharedCSR.create({"a": np.zeros(1, dtype=np.int64)})
        try:
            with pytest.raises(TypeError, match="descriptor"):
                pickle.dumps(handle)
        finally:
            handle.close()
            handle.unlink()

    def test_close_is_idempotent_and_invalidates_views(self):
        handle = SharedCSR.create({"a": np.zeros(4, dtype=np.int64)})
        handle.close()
        handle.close()
        with pytest.raises(InvalidParameterError, match="closed"):
            handle.array("a")
        handle.unlink()

    def test_only_owner_unlinks(self):
        handle = SharedCSR.create({"a": np.zeros(2, dtype=np.int64)})
        attached = SharedCSR.attach(handle.descriptor())
        try:
            with pytest.raises(InvalidParameterError, match="owner|creating"):
                attached.unlink()
        finally:
            attached.close()
            handle.close()
            handle.unlink()

    def test_create_validates_inputs(self):
        with pytest.raises(InvalidParameterError):
            SharedCSR.create({})
        with pytest.raises(InvalidParameterError, match="object dtype"):
            SharedCSR.create({"bad": np.array([{"x": 1}], dtype=object)})

    def test_unknown_array_name(self):
        with SharedCSR.create({"a": np.zeros(1, dtype=np.int64)}) as handle:
            with pytest.raises(InvalidParameterError, match="no array"):
                handle.array("missing")

    def test_malformed_descriptor(self):
        with pytest.raises(InvalidParameterError, match="descriptor"):
            SharedCSR.attach({"nope": 1})


class TestChunkSpans:
    """Regressions for the degenerate HeapInit chunking inputs.

    The pre-tier implementation crashed with ``Pool(processes=0)`` on
    an empty residual graph and produced pathological 1-node chunks
    whenever ``n < workers * 4``.
    """

    def test_empty_graph_yields_no_spans(self):
        assert chunk_spans(0, 4) == []
        assert chunk_spans(-1, 4) == []

    def test_spans_cover_exactly_once(self):
        for n in (1, 3, 7, 16, 100, 257):
            for workers in (1, 2, 4, 7):
                spans = chunk_spans(n, workers)
                covered = [u for a, b in spans for u in range(a, b)]
                assert covered == list(range(n))

    def test_no_tiny_chunks(self):
        # n < workers*4 used to explode into 1-node chunks; every span
        # except possibly the tail must now hold >= MIN_CHUNK roots.
        for n in (2, 5, 9, 15):
            for workers in (2, 4, 8):
                spans = chunk_spans(n, workers)
                assert all(b - a >= MIN_CHUNK for a, b in spans[:-1])
                assert len(spans) <= max(1, -(-n // MIN_CHUNK))

    def test_workers_zero_is_clamped(self):
        assert chunk_spans(10, 0) == chunk_spans(10, 1)


class TestParallelHeapInitDegenerate:
    def test_empty_residual_graph(self):
        stats = {"findmin_calls": 0.0, "branches_pruned": 0.0, "heap_pushes": 0.0}
        from repro.graph.graph import Graph
        from repro.graph.dag import OrientedGraph

        g = Graph.from_edges([], n=0)
        ocsr = OrientedGraph(g, np.zeros(0, dtype=np.int64)).csr()
        heap = parallel_heap_init(
            ocsr=ocsr,
            scores=np.zeros(0, dtype=np.int64),
            valid=np.zeros(0, dtype=bool),
            k=3,
            prune=True,
            workers=4,
            stats=stats,
        )
        assert heap == []
        assert stats["heap_pushes"] == 0.0

    def test_tiny_graph_many_workers_matches_sequential(self):
        # n < workers*4: must clamp instead of thrashing or crashing.
        from repro.core.lightweight import lightweight

        g = erdos_renyi_gnp(10, 0.6, seed=4)
        baseline = lightweight(g, 3, workers=1)
        fanned = lightweight(g, 3, workers=8)
        assert fanned.sorted_cliques() == baseline.sorted_cliques()
        assert fanned.stats == baseline.stats


class TestDifferentialSolutions:
    """Process-parallel solves pinned against their sequential twins."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_lp_solutions_and_stats_worker_invariant(self, workers):
        g = powerlaw_cluster(180, 5, 0.5, seed=12)
        session = Session(g)
        seq = session.solve(4, "lp", workers=1)
        par = session.solve(4, "lp", workers=workers)
        assert _ordered(par) == _ordered(seq)
        assert par.stats == seq.stats

    def test_bb_matches_sequential_and_oracle(self, random_graphs):
        for g in random_graphs:
            seq = exact_optimum_bb(g, 3)
            par = parallel_exact_bb(g, 3, workers=2)
            assert _ordered(par) == _ordered(seq)
            assert len(par.cliques) == brute_force_max_disjoint(g, 3)
            assert par.stats["subtree_tasks"] >= 1.0

    def test_bb_worker_count_invariant(self):
        g = erdos_renyi_gnp(40, 0.25, seed=9)
        base = parallel_exact_bb(g, 3, workers=1)
        for workers in (2, 3):
            again = parallel_exact_bb(g, 3, workers=workers)
            assert _ordered(again) == _ordered(base)

    def test_bb_no_cliques(self):
        g = erdos_renyi_gnp(12, 0.05, seed=1)  # too sparse for triangles
        result = parallel_exact_bb(g, 5, workers=2)
        assert result.cliques == []
        assert result.stats["subtree_tasks"] == 0.0

    def test_bb_rejects_bad_workers(self):
        g = erdos_renyi_gnp(10, 0.4, seed=2)
        with pytest.raises(InvalidParameterError, match="workers"):
            parallel_exact_bb(g, 3, workers=0)


class TestProcessSolvePool:
    def test_solve_routes_and_pins(self):
        g = powerlaw_cluster(150, 5, 0.5, seed=21)
        session = Session(g)
        seq = session.solve(3, "lp")
        with ProcessSolvePool(session, workers=2) as pool:
            assert _ordered(pool.solve(3, "lp")) == _ordered(seq)
            with pytest.raises(InvalidParameterError, match="decomposition"):
                pool.solve(3, "hg")

    def test_submit_solve_round_trips_payload(self):
        g = erdos_renyi_gnp(80, 0.15, seed=5)
        session = Session(g)
        seq = session.solve(3, "lp")
        with ProcessSolvePool(session, workers=2) as pool:
            payload = pool.submit_solve(3, "lp").result(timeout=120)
            assert [tuple(c) for c in payload["cliques"]] == _ordered(seq)
            assert payload["stats"] == dict(seq.stats)
            assert payload["size"] == seq.size

    def test_checkpoint_ping_pong_matches_sequential(self):
        g = erdos_renyi_gnp(90, 0.12, seed=6)
        session = Session(g)
        seq = session.solve(3, "lp")
        with ProcessSolvePool(session, workers=2) as pool:
            result, snapshots = pool.run_task(
                pool.checkpoint_of(3, "lp"), max_work_per_step=60
            )
            assert [tuple(c) for c in result["cliques"]] == _ordered(seq)
            assert len(snapshots) >= 2  # actually migrated in quanta
            assert pool.stats["steps_dispatched"] >= len(snapshots)

    def test_worker_death_recovers_from_checkpoint(self):
        g = erdos_renyi_gnp(100, 0.12, seed=8)
        session = Session(g)
        seq = session.solve(3, "lp")
        with ProcessSolvePool(session, workers=1) as pool:
            out = pool.step_task(pool.checkpoint_of(3, "lp"), max_work=25)
            assert not out["done"]
            pids = pool.worker_pids()
            assert pids
            os.kill(pids[0], signal.SIGKILL)
            # The dead worker held the lane-task cache; the parent's
            # checkpoint is the only surviving state and must finish
            # the solve bit-identically on a rebuilt pool.
            while not out["done"]:
                out = pool.step_task(out["checkpoint"], max_work=50)
            assert [tuple(c) for c in out["result"]["cliques"]] == _ordered(seq)
            assert pool.stats["worker_restarts"] >= 1.0

    def test_lane_task_step_contract(self):
        g = erdos_renyi_gnp(70, 0.15, seed=3)
        session = Session(g)
        seq = session.solve(3, "lp")
        with ProcessSolvePool(session, workers=1) as pool:
            lane = ProcessLaneTask(
                pool, pool.checkpoint_of(3, "lp"), max_work_per_step=40
            )
            with pytest.raises(InvalidParameterError, match="finished"):
                lane.result()
            harvested = lane.partial()
            assert harvested["checkpoint"]["work"] == 0
            assert lane.step(None) is True  # unbounded step runs to done
            assert [tuple(c) for c in lane.result()["cliques"]] == _ordered(seq)
            assert lane.snapshots[-1]["done"] is True

    def test_rejects_bad_parameters(self):
        session = Session(erdos_renyi_gnp(10, 0.3, seed=0))
        with pytest.raises(InvalidParameterError, match="workers"):
            ProcessSolvePool(session, workers=0)
        with pytest.raises(InvalidParameterError, match="max_retries"):
            ProcessSolvePool(session, workers=1, max_retries=-1)


class TestSchedulerProcessLane:
    def test_submit_process_runs_to_completion(self):
        from repro.serve.scheduler import Scheduler

        g = erdos_renyi_gnp(80, 0.15, seed=14)
        session = Session(g)
        seq = session.solve(3, "lp")
        scheduler = Scheduler(workers=1, quantum=0.05)
        try:
            with ProcessSolvePool(session, workers=1) as pool:
                lane = ProcessLaneTask(
                    pool, pool.checkpoint_of(3, "lp"), max_work_per_step=50
                )
                ticket = scheduler.submit_process(lane)
                result = ticket.result(timeout=120)
                assert [tuple(c) for c in result["cliques"]] == _ordered(seq)
        finally:
            scheduler.shutdown()


@pytest.mark.slow
class TestSpawnPortability:
    """The tier's contract under a fresh-interpreter start method."""

    def test_spawn_checkpoints_bit_identical(self):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        g = erdos_renyi_gnp(90, 0.12, seed=17)
        session = Session(g)
        local = session.task(3, "lp")
        local.step(max_work=35)
        with ProcessSolvePool(session, workers=1, start_method="spawn") as pool:
            out = pool.step_task(pool.checkpoint_of(3, "lp"), max_work=35)
            # No inherited globals: the worker rebuilt the graph from
            # shared memory and its checkpoint must match the local one
            # byte for byte (same fingerprint, work, engine state).
            assert out["checkpoint"] == local.checkpoint()

    def test_spawn_bb_matches_sequential(self):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        g = erdos_renyi_gnp(35, 0.3, seed=19)
        seq = exact_optimum_bb(g, 3)
        par = parallel_exact_bb(g, 3, workers=2, start_method="spawn")
        assert _ordered(par) == _ordered(seq)


class TestSharedIncumbent:
    def test_broadcast_floor_preserves_lex_first_optimum(self):
        # Dense instance with many optimal ties: the floor must keep
        # equal-size branches alive so the lex-first optimum survives.
        g = planted = erdos_renyi_gnp(36, 0.45, seed=23)
        seq = exact_optimum_bb(planted, 3)
        par = parallel_exact_bb(g, 3, workers=3, sync_every=1)
        assert _ordered(par) == _ordered(seq)

    def test_stats_record_fanout_shape(self):
        g = erdos_renyi_gnp(40, 0.3, seed=27)
        par = parallel_exact_bb(g, 3, workers=2, tasks_per_worker=2)
        assert par.stats["subtree_tasks"] <= 4.0
        assert par.stats["incumbent_broadcasts"] >= 0.0
        assert par.stats["nodes_expanded"] >= par.stats["subtree_tasks"]
