"""Tests for ASCII chart rendering."""

from repro.bench.plotting import ascii_log_chart, sparkline


class TestAsciiLogChart:
    def test_bars_scale_with_magnitude(self):
        chart = ascii_log_chart(
            "demo", "k", [3, 4],
            {"HG": [0.001, 0.001], "GC": [1.0, 10.0]},
        )
        lines = chart.splitlines()
        hg_bar = next(l for l in lines if l.startswith("HG") and "k=3" in l)
        gc_bar = next(l for l in lines if l.startswith("GC") and "k=4" in l)
        assert gc_bar.count("#") > hg_bar.count("#")

    def test_markers_rendered_verbatim(self):
        chart = ascii_log_chart("demo", "k", [3], {"OPT": ["OOT"]})
        assert "OOT" in chart

    def test_title_and_units(self):
        chart = ascii_log_chart("runtime", "k", [3], {"LP": [0.5]}, unit="s")
        assert chart.startswith("== runtime")
        assert "0.5s" in chart

    def test_all_markers_no_numeric(self):
        chart = ascii_log_chart("x", "k", [3, 4], {"GC": ["OOM", "OOM"]})
        assert chart.count("OOM") == 2

    def test_zero_value_edge_case(self):
        chart = ascii_log_chart("x", "k", [1], {"A": [0.0]})
        assert "0" in chart


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 8

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
