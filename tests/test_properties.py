"""Hypothesis property tests for core invariants across the package."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Graph, find_disjoint_cliques, is_maximal, verify_solution
from repro.cliques import count_cliques, node_scores
from repro.core.scores import degree_bounds
from repro.cliques.clique_graph import build_clique_graph
from repro.graph.generators import erdos_renyi_gnp
from repro.graph.kcore import core_numbers
from repro.mis.greedy import greedy_mis, is_independent_set


graphs = st.builds(
    erdos_renyi_gnp,
    n=st.integers(min_value=0, max_value=24),
    p=st.floats(min_value=0.0, max_value=0.55),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=25, deadline=None)
@given(g=graphs, k=st.integers(min_value=2, max_value=5))
def test_every_method_valid_and_maximal(g: Graph, k: int):
    for method in ("hg", "gc", "l", "lp"):
        result = find_disjoint_cliques(g, k, method=method)
        verify_solution(g, k, result.cliques)
        assert is_maximal(g, k, result.cliques)


@settings(max_examples=25, deadline=None)
@given(g=graphs, k=st.integers(min_value=2, max_value=5))
def test_score_sum_identity(g: Graph, k: int):
    scores = node_scores(g, k)
    assert scores.sum() == k * count_cliques(g, k)
    assert (scores >= 0).all()


small_graphs = st.builds(
    erdos_renyi_gnp,
    n=st.integers(min_value=0, max_value=22),
    p=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=20, deadline=None)
@given(g=small_graphs)
def test_theorem2_bounds(g: Graph):
    k = 3
    cg = build_clique_graph(g, k)
    scores = node_scores(g, k)
    for i, clique in enumerate(cg.cliques):
        lo, hi = degree_bounds(clique, scores, k)
        assert lo <= cg.degree_of(i) <= hi


@settings(max_examples=25, deadline=None)
@given(g=graphs)
def test_greedy_mis_properties(g: Graph):
    chosen = greedy_mis(g)
    assert is_independent_set(g, chosen)
    chosen_set = set(chosen)
    assert all(
        u in chosen_set or (g.neighbors(u) & chosen_set) for u in g.nodes()
    )


@settings(max_examples=25, deadline=None)
@given(g=graphs)
def test_core_numbers_characterisation(g: Graph):
    core = core_numbers(g)
    # Each node's core number is at most its degree.
    assert all(core[u] <= g.degree(u) for u in g.nodes())
    # The c-core induced subgraph has min degree >= c for the max core.
    if g.n:
        c = int(core.max())
        members = {u for u in g.nodes() if core[u] >= c}
        for u in members:
            assert len(g.neighbors(u) & members) >= c or c == 0


@settings(max_examples=25, deadline=None)
@given(g=graphs, k=st.integers(min_value=2, max_value=4))
def test_solution_sizes_ordered(g: Graph, k: int):
    # GC == LP always; HG differs but stays within the k-approximation
    # band of the larger of the two.
    gc = find_disjoint_cliques(g, k, method="gc").size
    lp = find_disjoint_cliques(g, k, method="lp").size
    hg = find_disjoint_cliques(g, k, method="hg").size
    assert gc == lp
    best = max(lp, hg)
    assert min(lp, hg) >= best / k  # both are k-approximations of OPT >= best


@settings(max_examples=20, deadline=None)
@given(
    g=graphs,
    k=st.integers(min_value=3, max_value=4),
)
def test_upper_bounds_dominate_heuristics(g: Graph, k: int):
    from repro.analysis import optimum_upper_bounds

    lp = find_disjoint_cliques(g, k, method="lp").size
    assert optimum_upper_bounds(g, k).best >= lp


@settings(max_examples=20, deadline=None)
@given(g=graphs)
def test_complement_involution(g: Graph):
    assert g.complement().complement() == g


@settings(max_examples=20, deadline=None)
@given(g=graphs, seed=st.integers(min_value=0, max_value=1000))
def test_edge_removal_monotone(g: Graph, seed: int):
    edges = list(g.edges())
    if not edges:
        return
    rng = np.random.default_rng(seed)
    u, v = edges[int(rng.integers(len(edges)))]
    smaller = g.remove_edges([(u, v)])
    assert count_cliques(smaller, 3) <= count_cliques(g, 3)
