"""Tests for the solver registry: Method metadata and typed options."""

import pytest

from repro import METHODS, REGISTRY, Graph, find_disjoint_cliques
from repro.cli import main as cli_main
from repro.core.registry import (
    ExactOptions,
    GCOptions,
    HGOptions,
    LightweightOptions,
    Method,
    SolveOptions,
    SolverRegistry,
)
from repro.errors import InvalidParameterError


class TestRegistryContents:
    def test_all_paper_tags_registered(self):
        assert REGISTRY.tags() == ("hg", "gc", "l", "lp", "opt", "opt-bb")
        assert METHODS == REGISTRY.tags()

    def test_get_returns_method_objects(self):
        for tag in METHODS:
            method = REGISTRY.get(tag)
            assert isinstance(method, Method)
            assert method.tag == tag
            assert method.summary
            assert issubclass(method.options_cls, SolveOptions)

    def test_get_case_insensitive(self):
        assert REGISTRY.get("LP").tag == "lp"
        assert REGISTRY.get("Opt-BB").tag == "opt-bb"

    def test_unknown_tag(self):
        with pytest.raises(InvalidParameterError, match="unknown method"):
            REGISTRY.get("magic")

    def test_non_string_tag(self):
        with pytest.raises(InvalidParameterError, match="string tag"):
            REGISTRY.get(3)

    def test_contains_and_len(self):
        assert "lp" in REGISTRY and "LP" in REGISTRY
        assert "magic" not in REGISTRY and 3 not in REGISTRY
        assert len(REGISTRY) == 6

    def test_exactness_metadata(self):
        exact = {m.tag for m in REGISTRY if m.exact}
        assert exact == {"opt", "opt-bb"}

    def test_time_budget_metadata(self):
        budgeted = {m.tag for m in REGISTRY if m.supports_time_budget}
        assert budgeted == {"opt", "opt-bb"}

    def test_options_classes(self):
        assert REGISTRY.get("hg").options_cls is HGOptions
        assert REGISTRY.get("gc").options_cls is GCOptions
        assert REGISTRY.get("l").options_cls is LightweightOptions
        assert REGISTRY.get("lp").options_cls is LightweightOptions
        assert REGISTRY.get("opt").options_cls is ExactOptions
        assert REGISTRY.get("opt-bb").options_cls is ExactOptions

    def test_duplicate_registration_rejected(self):
        registry = SolverRegistry()

        @registry.register("x", summary="one", exact=False)
        def _first(prep, k, opts):  # pragma: no cover - never run
            raise NotImplementedError

        with pytest.raises(InvalidParameterError, match="already registered"):

            @registry.register("X", summary="two", exact=False)
            def _second(prep, k, opts):  # pragma: no cover - never run
                raise NotImplementedError


class TestOptionParsing:
    def test_typo_rejected_with_suggestion(self):
        with pytest.raises(InvalidParameterError) as err:
            REGISTRY.get("opt").parse_options({"time_budgt": 5.0})
        message = str(err.value)
        assert "time_budgt" in message
        assert "time_budget" in message  # valid options listed + suggestion
        assert "max_cliques" in message

    def test_unknown_option_names_method(self):
        with pytest.raises(InvalidParameterError, match="'gc'"):
            REGISTRY.get("gc").parse_options({"workers": 2})

    def test_option_valid_for_other_method_rejected(self):
        # time_budget belongs to opt/opt-bb, not lp.
        with pytest.raises(InvalidParameterError, match="workers"):
            REGISTRY.get("lp").parse_options({"time_budget": 5.0})

    def test_prune_hint(self):
        with pytest.raises(InvalidParameterError, match="prune"):
            REGISTRY.get("lp").parse_options({"prune": False})

    def test_defaults(self):
        opts = REGISTRY.get("lp").parse_options({})
        assert opts.workers == 1
        assert REGISTRY.get("gc").parse_options({}).max_cliques is None

    def test_domain_validation(self):
        with pytest.raises(InvalidParameterError, match="workers"):
            REGISTRY.get("lp").parse_options({"workers": -1})
        with pytest.raises(InvalidParameterError, match="time_budget"):
            REGISTRY.get("opt").parse_options({"time_budget": -3})
        with pytest.raises(InvalidParameterError, match="max_cliques"):
            REGISTRY.get("gc").parse_options({"max_cliques": 0})
        with pytest.raises(InvalidParameterError, match="max_cliques"):
            REGISTRY.get("gc").parse_options({"max_cliques": 2.5})

    def test_describe_lists_defaults(self):
        assert "order='degree'" in HGOptions.describe()
        assert SolveOptions.describe() == "-"


class TestOneShotWrapperErrors:
    """The legacy entry point surfaces the same typed validation."""

    def test_typo_through_find_disjoint_cliques(self, triangle_pair):
        with pytest.raises(InvalidParameterError, match="time_budgt"):
            find_disjoint_cliques(triangle_pair, 3, method="opt", time_budgt=1)

    def test_wrong_method_option(self, triangle_pair):
        # order= is an hg/gc option; lp must reject it up front.
        with pytest.raises(InvalidParameterError, match="valid options"):
            find_disjoint_cliques(triangle_pair, 3, method="lp", order="degree")

    def test_valid_options_still_forwarded(self, triangle_pair):
        result = find_disjoint_cliques(
            triangle_pair, 3, method="gc", max_cliques=100
        )
        assert result.size == 2


class TestMethodsCommand:
    def test_cli_methods_lists_registry(self, capsys):
        assert cli_main(["methods"]) == 0
        out = capsys.readouterr().out
        for tag in METHODS:
            assert tag in out
        assert "time_budget" in out and "exact" in out and "heuristic" in out
        assert "max_cliques" in out

    def test_cli_solve_accepts_opt_bb(self, capsys):
        g_edges = "0 1\n0 2\n1 2\n"
        import tempfile, os

        with tempfile.NamedTemporaryFile("w", suffix=".edges", delete=False) as fh:
            fh.write(g_edges)
            path = fh.name
        try:
            assert cli_main(["solve", "--input", path, "--k", "3",
                             "--method", "opt-bb"]) == 0
            assert "|S|=1" in capsys.readouterr().out
        finally:
            os.unlink(path)
