"""Tests for the EXPERIMENTS.md report generator (structure only).

The full report run is exercised out-of-band (it regenerates every
artefact); here we check the commentary registry stays in sync with the
experiment runners and that the rendering machinery composes.
"""

from repro.bench import experiments as exp
from repro.bench.report import PAPER_NOTES


class TestPaperNotes:
    def test_every_runner_has_commentary(self):
        assert set(PAPER_NOTES) == set(exp._RUNNERS)

    def test_notes_mention_paper_and_measured(self):
        for name, note in PAPER_NOTES.items():
            if name.startswith("ablation"):
                continue
            assert "**Paper:**" in note, name
            assert "**Here:**" in note, name


class TestReportAssembly:
    def test_report_section_for_single_artefact(self, monkeypatch):
        # Swap run_all for a cheap single artefact to exercise assembly.
        from repro.bench import report as report_mod

        monkeypatch.setattr(
            exp, "run_all", lambda: [exp.run_table1(names=["FTB"], ks=(3,))]
        )
        text = report_mod.build_report()
        assert "# EXPERIMENTS" in text
        assert "## table1" in text
        assert "```text" in text
        assert "FTB" in text

    def test_main_writes_file(self, tmp_path, monkeypatch):
        from repro.bench import report as report_mod

        monkeypatch.setattr(
            exp, "run_all", lambda: [exp.run_table1(names=["FTB"], ks=(3,))]
        )
        out = tmp_path / "EXP.md"
        assert report_mod.main([str(out)]) == 0
        assert out.exists() and "table1" in out.read_text()
