"""repro-lint self-tests: fixture corpus, ratchet, registry rule, CLI.

Two-directional fixture coverage keeps the rules honest: every
``fail_*.py`` fixture must trigger its rule (the rule cannot go blind)
and every ``pass_*.py`` fixture must stay silent (the rule cannot go
trigger-happy). A final smoke test asserts the shipped tree is clean
under the shipped baseline — the state CI's static-analysis job gates.
"""

import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from tools.repro_lint.concurrency import FIXTURE_CHECKERS as CONCURRENCY_CHECKERS
from tools.repro_lint.determinism import FIXTURE_CHECKERS as DETERMINISM_CHECKERS
from tools.repro_lint.core import (
    ROOT,
    Violation,
    load_baseline,
    load_module,
    run_rules,
    write_baseline,
)
from tools.repro_lint.rules import FILE_RULES, PROJECT_RULES
from tools.repro_lint.rules.registry_meta import check_registry_object

FIXTURES = Path(__file__).resolve().parent.parent / "tools" / "repro_lint" / "fixtures"

#: Project-scope rules with single-file fixture entry points.
FIXTURE_CHECKERS = {**CONCURRENCY_CHECKERS, **DETERMINISM_CHECKERS}


def run_rule_on_fixture(rule: str, path: Path) -> list:
    """Dispatch a fixture file to its rule's single-file entry point."""
    if rule in FIXTURE_CHECKERS:
        return list(FIXTURE_CHECKERS[rule]([path]))
    return list(FILE_RULES[rule](load_module(path)))


def fixture_cases(kind: str) -> list:
    cases = []
    for rule_dir in sorted(FIXTURES.iterdir()):
        if not rule_dir.is_dir():
            continue
        for path in sorted(rule_dir.glob(f"{kind}_*.py")):
            cases.append(pytest.param(rule_dir.name, path, id=f"{rule_dir.name}/{path.name}"))
    return cases


class TestFixtureCorpus:
    def test_corpus_is_present_for_every_rule(self):
        for rule in (*FILE_RULES, *FIXTURE_CHECKERS):
            rule_dir = FIXTURES / rule
            assert list(rule_dir.glob("pass_*.py")), f"no pass fixtures for {rule}"
            assert list(rule_dir.glob("fail_*.py")), f"no fail fixtures for {rule}"

    @pytest.mark.parametrize("rule,path", fixture_cases("pass"))
    def test_pass_fixture_is_silent(self, rule, path):
        violations = run_rule_on_fixture(rule, path)
        assert violations == [], [v.render() for v in violations]

    @pytest.mark.parametrize("rule,path", fixture_cases("fail"))
    def test_fail_fixture_fires(self, rule, path):
        violations = run_rule_on_fixture(rule, path)
        assert violations, f"{path.name} produced no {rule} violations"
        assert all(v.rule == rule for v in violations)


class TestSuppressionsAndBaseline:
    def test_suppression_comment_silences_the_anchored_line(self, tmp_path):
        source = (FIXTURES / "statskeys" / "fail_typo.py").read_text()
        suppressed = source.replace(
            'stats["cache_hit"] = stats.get("cache_hit", 0) + 1',
            'stats["cache_hit"] = stats.get("cache_hit", 0) + 1  # repro-lint: ignore=statskeys',
        )
        assert suppressed != source
        target = tmp_path / "suppressed.py"
        target.write_text(suppressed)
        report = run_rules(
            {"statskeys": FILE_RULES["statskeys"]}, {}, files=[target]
        )
        assert report.violations == []

    def test_baseline_makes_known_violations_old(self, tmp_path):
        target = tmp_path / "known.py"
        target.write_text((FIXTURES / "statskeys" / "fail_typo.py").read_text())
        first = run_rules({"statskeys": FILE_RULES["statskeys"]}, {}, files=[target])
        assert first.failed and first.new

        baseline = {v.fingerprint() for v in first.violations}
        second = run_rules(
            {"statskeys": FILE_RULES["statskeys"]},
            {},
            baseline=baseline,
            files=[target],
        )
        assert not second.failed
        assert second.violations and not second.new

    def test_stale_baseline_entry_fails_the_run(self, tmp_path):
        target = tmp_path / "known.py"
        target.write_text((FIXTURES / "statskeys" / "fail_typo.py").read_text())
        first = run_rules({"statskeys": FILE_RULES["statskeys"]}, {}, files=[target])
        baseline = {v.fingerprint() for v in first.violations} | {"statskeys|gone.py|x"}
        second = run_rules(
            {"statskeys": FILE_RULES["statskeys"]},
            {},
            baseline=baseline,
            files=[target],
        )
        assert second.stale_baseline == ["statskeys|gone.py|x"]
        assert second.failed and not second.new

    def test_stale_baseline_is_scoped_to_the_rules_that_ran(self, tmp_path):
        target = tmp_path / "known.py"
        target.write_text((FIXTURES / "statskeys" / "fail_typo.py").read_text())
        first = run_rules({"statskeys": FILE_RULES["statskeys"]}, {}, files=[target])
        baseline = {v.fingerprint() for v in first.violations} | {"locking|other.py|y"}
        second = run_rules(
            {"statskeys": FILE_RULES["statskeys"]},
            {},
            baseline=baseline,
            files=[target],
        )
        assert second.stale_baseline == []
        assert not second.failed

    def test_stale_suppression_fails_the_run(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(
            '"""Clean module."""\n\n'
            "x = 1  # repro-lint: ignore=statskeys\n"
        )
        report = run_rules(
            {"statskeys": FILE_RULES["statskeys"]}, {}, files=[target]
        )
        assert report.failed and not report.new
        [entry] = report.stale_suppressions
        assert "ignore=statskeys" in entry and "clean.py:3" in entry

    def test_suppression_for_unran_rule_is_not_stale(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(
            '"""Clean module."""\n\n'
            "x = 1  # repro-lint: ignore=locking\n"
        )
        report = run_rules(
            {"statskeys": FILE_RULES["statskeys"]}, {}, files=[target]
        )
        assert not report.failed
        assert report.stale_suppressions == []

    def test_suppression_silences_project_rule_violations(self, tmp_path):
        source = (FIXTURES / "migration" / "fail_state_dict_lock.py").read_text()
        waived = source.replace(
            'return {"ticks": self.ticks, "lock": self._lock}',
            'return {"ticks": self.ticks, "lock": self._lock}  # repro-lint: ignore=migration',
        )
        assert waived != source
        target = tmp_path / "waived.py"
        target.write_text(waived)

        from tools.repro_lint.concurrency import check_migration_files

        def rule(root):
            return check_migration_files([target])

        report = run_rules({}, {"migration": rule}, files=[target])
        assert report.violations == []
        assert report.stale_suppressions == []
        assert not report.failed

    def test_fingerprint_is_stable_across_line_drift(self):
        a = Violation(rule="r", path="p.py", line=3, message="m")
        b = Violation(rule="r", path="p.py", line=30, message="m")
        assert a.fingerprint() == b.fingerprint()

    def test_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline({"b|x|m", "a|y|m"}, path)
        assert load_baseline(path) == {"a|y|m", "b|x|m"}
        assert load_baseline(tmp_path / "missing.json") == set()


def method_stub(**overrides) -> SimpleNamespace:
    """A metadata-complete fake Method; overrides inject one defect."""
    from repro.core.registry import HGOptions

    base = dict(
        tag="fx",
        summary="fixture method",
        options_cls=HGOptions,
        resumable=True,
        exact=False,
        supports_warm_start=False,
        supports_time_budget=False,
        deadline_safe=True,
        engine=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestRegistryRule:
    def check(self, *methods) -> list[Violation]:
        return list(check_registry_object(list(methods)))

    def test_consistent_stub_is_clean(self):
        assert self.check(method_stub()) == []

    def test_uppercase_tag_and_empty_summary(self):
        messages = [v.message for v in self.check(method_stub(tag="FX", summary=" "))]
        assert any("lowercase" in m for m in messages)
        assert any("empty summary" in m for m in messages)

    def test_options_class_must_subclass_solveoptions(self):
        [violation] = self.check(method_stub(options_cls=dict))
        assert "SolveOptions" in violation.message

    def test_warm_start_requires_resumable(self):
        [violation] = self.check(
            method_stub(supports_warm_start=True, resumable=False)
        )
        assert "resumable" in violation.message

    def test_time_budget_must_exist_on_options(self):
        [violation] = self.check(method_stub(supports_time_budget=True))
        assert "time_budget" in violation.message

    def test_exact_methods_are_never_deadline_safe(self):
        [violation] = self.check(method_stub(exact=True))
        assert "deadline_safe" in violation.message

    def test_engine_factory_signature_is_enforced(self):
        def bad_engine(prep, k, opts, extra_knob=3):  # no warm_start
            return None

        messages = [
            v.message for v in self.check(method_stub(engine=bad_engine))
        ]
        assert any("warm_start" in m for m in messages)
        assert any("extra_knob" in str(m) or "extra kwargs" in m for m in messages)

    def test_live_registry_is_consistent(self):
        from repro.core.registry import REGISTRY

        assert list(check_registry_object(REGISTRY)) == []


class TestCliSurfaces:
    def test_github_format_emits_workflow_annotations(self, capsys):
        from tools.repro_lint.__main__ import _print_report
        from tools.repro_lint.core import LintReport

        v = Violation(rule="lockorder", path="src/x.py", line=7, message="boom")
        report = LintReport(
            violations=[v], new=[v], per_rule={"lockorder": 1}, files_checked=1
        )
        _print_report(report, verbose=False, fmt="github")
        out = capsys.readouterr().out
        assert "::error file=src/x.py,line=7,title=repro-lint[lockorder]::boom" in out

    def test_export_lock_graph_writes_artifacts(self, tmp_path):
        from tools.repro_lint.concurrency.lockorder import export_lock_graph

        payload = export_lock_graph(tmp_path)
        assert (tmp_path / "lock_order.json").exists()
        dot = (tmp_path / "lock_order.dot").read_text()
        assert dot.startswith("digraph lock_order")
        assert payload["cycles"] == []
        labels = {lock["label"] for lock in payload["locks"]}
        assert {"Graph._lock", "Session._lock", "DynamicFeed._lock"} <= labels

    def test_static_graph_is_acyclic_and_covers_known_edges(self):
        from tools.repro_lint.concurrency.lockorder import static_edge_set

        edges = static_edge_set()
        assert ("OrientedGraph._lock", "Graph._lock") in edges
        assert ("Preprocessing._lock", "Graph._lock") in edges
        assert ("Session._lock", "Graph._lock") in edges


class TestRepoIsClean:
    def test_tree_is_clean_under_shipped_baseline(self):
        report = run_rules(FILE_RULES, PROJECT_RULES, baseline=load_baseline())
        assert not report.failed, "\n".join(v.render() for v in report.new)
        assert report.stale_baseline == [], report.stale_baseline

    def test_module_entry_point_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "--no-external"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new" in proc.stdout


class TestDeterminismRules:
    """Behavioral unit tests for the determinism package beyond the
    fixture corpus: suppression wiring, ratchet hygiene, and the
    interprocedural paths that single-file fixtures exercise thinly."""

    def test_suppression_silences_iterorder(self, tmp_path):
        source = (FIXTURES / "iterorder" / "fail_set_sinks.py").read_text()
        waived = source.replace(
            "    return list(nodes)",
            "    return list(nodes)  # repro-lint: ignore=iterorder",
        )
        assert waived != source
        target = tmp_path / "waived.py"
        target.write_text(waived)

        from tools.repro_lint.determinism import check_iterorder_files

        def rule(root):
            return check_iterorder_files([target])

        report = run_rules({}, {"iterorder": rule}, files=[target])
        assert all("list(nodes)" not in v.message for v in report.violations)
        assert not report.stale_suppressions

    def test_stale_determinism_suppression_fails(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text(
            '"""Clean module."""\n\n'
            "x = 1  # repro-lint: ignore=rngflow\n"
        )

        from tools.repro_lint.determinism import check_rngflow_files

        def rule(root):
            return check_rngflow_files([target])

        report = run_rules({}, {"rngflow": rule}, files=[target])
        assert report.failed
        [entry] = report.stale_suppressions
        assert "ignore=rngflow" in entry

    def test_shipped_baseline_has_no_determinism_entries(self):
        baseline = load_baseline()
        for rule in ("iterorder", "rngflow", "envdep"):
            assert not any(f.startswith(f"{rule}|") for f in baseline)

    def test_envdep_traces_through_helper_returns(self, tmp_path):
        target = tmp_path / "helper_chain.py"
        target.write_text(
            "import os\n\n\n"
            "def _width() -> int:\n"
            "    return os.cpu_count() or 1\n\n\n"
            "def _indirect() -> int:\n"
            "    return _width()\n\n\n"
            "class Engine:\n"
            "    def checkpoint(self) -> dict:\n"
            "        return {'w': _indirect()}\n"
        )
        from tools.repro_lint.determinism import check_envdep_files

        violations = check_envdep_files([target])
        assert violations, "two-hop env return chain must be traced"
        assert all(v.rule == "envdep" for v in violations)

    def test_iterorder_respects_parameter_annotations(self, tmp_path):
        target = tmp_path / "annotated.py"
        target.write_text(
            "def ordered(xs: list[int]) -> list[int]:\n"
            "    return list(xs)\n\n\n"
            "def unordered(xs: set[int]) -> list[int]:\n"
            "    return list(xs)\n"
        )
        from tools.repro_lint.determinism import check_iterorder_files

        violations = check_iterorder_files([target])
        assert len(violations) == 1
        assert violations[0].line == 6

    def test_rngflow_seed_laundering_through_locals(self, tmp_path):
        target = tmp_path / "laundered.py"
        target.write_text(
            "import numpy as np\n\n\n"
            "def good(seed: int) -> object:\n"
            "    derived = seed * 3 + 1\n"
            "    return np.random.default_rng(derived)\n\n\n"
            "def bad() -> object:\n"
            "    import time\n"
            "    stamp = time.time_ns()\n"
            "    return np.random.default_rng(stamp)\n"
        )
        from tools.repro_lint.determinism import check_rngflow_files

        violations = check_rngflow_files([target])
        assert len(violations) == 1
        assert "entropy" in violations[0].message

    def test_determinism_rules_are_registered(self):
        for rule in ("iterorder", "rngflow", "envdep"):
            assert rule in PROJECT_RULES
