"""Tests for iterative residual packing."""

import pytest

from repro import Graph
from repro.core.residual import ResidualPacking, iterative_residual_packing
from repro.errors import InvalidParameterError
from repro.graph.generators import planted_clique_packing, powerlaw_cluster


class TestBasics:
    def test_single_round(self, triangle_pair):
        packing = iterative_residual_packing(triangle_pair, ks=(3,))
        assert packing.round_sizes() == {3: 2}
        assert packing.coverage(6) == 1.0
        assert packing.leftovers == []

    def test_fallback_rounds(self):
        # One 4-clique, one disjoint triangle, one disjoint edge, one
        # isolated node: rounds (4, 3, 2) pick them up in order.
        g = Graph(
            10,
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),   # K4
             (4, 5), (4, 6), (5, 6),                            # triangle
             (7, 8)],                                           # edge
        )
        packing = iterative_residual_packing(g, ks=(4, 3, 2))
        assert packing.round_sizes() == {4: 1, 3: 1, 2: 1}
        assert packing.covered_nodes == set(range(9))
        assert packing.leftovers == [[9]]

    def test_groups_concatenate(self):
        g = Graph(5, [(0, 1), (0, 2), (1, 2)])
        packing = iterative_residual_packing(g, ks=(3, 2))
        groups = packing.groups
        assert sorted(groups[0]) == [0, 1, 2]
        assert {u for grp in groups for u in grp} == set(range(5))

    def test_no_leftover_grouping(self):
        g = Graph(5, [(0, 1), (0, 2), (1, 2)])
        packing = iterative_residual_packing(g, ks=(3,), group_leftovers=False)
        assert packing.leftovers == []
        assert packing.covered_nodes == {0, 1, 2}


class TestValidity:
    def test_rounds_are_disjoint_cliques(self):
        g = powerlaw_cluster(250, 6, 0.55, seed=4)
        packing = iterative_residual_packing(g, ks=(4, 3, 2))
        seen: set[int] = set()
        for k, cliques in packing.rounds:
            for clique in cliques:
                assert len(clique) == k
                assert g.is_clique(clique)
                assert not (seen & clique)
                seen |= clique

    def test_planted_instance_fully_covered(self):
        g, planted = planted_clique_packing(5, 4, seed=8)
        packing = iterative_residual_packing(g, ks=(4,))
        assert packing.round_sizes()[4] == 5
        assert packing.coverage(g.n) == 1.0

    def test_coverage_monotone_in_rounds(self):
        g = powerlaw_cluster(300, 5, 0.5, seed=5)
        only4 = iterative_residual_packing(g, ks=(4,))
        full = iterative_residual_packing(g, ks=(4, 3, 2))
        assert full.coverage(g.n) >= only4.coverage(g.n)
        # First rounds agree (same solver on the same graph).
        assert full.round_sizes()[4] == only4.round_sizes()[4]


class TestValidation:
    def test_empty_ks(self, triangle_pair):
        with pytest.raises(InvalidParameterError):
            iterative_residual_packing(triangle_pair, ks=())

    def test_increasing_ks_rejected(self, triangle_pair):
        with pytest.raises(InvalidParameterError):
            iterative_residual_packing(triangle_pair, ks=(3, 4))

    def test_duplicate_ks_rejected(self, triangle_pair):
        with pytest.raises(InvalidParameterError):
            iterative_residual_packing(triangle_pair, ks=(3, 3))

    def test_k1_rejected(self, triangle_pair):
        with pytest.raises(InvalidParameterError):
            iterative_residual_packing(triangle_pair, ks=(3, 1))

    def test_empty_graph(self):
        packing = iterative_residual_packing(Graph(0), ks=(3,))
        assert packing.groups == []
        assert isinstance(packing, ResidualPacking)
