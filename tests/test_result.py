"""Tests for the result container and solution validators."""

import pytest

from repro import Graph
from repro.core.result import (
    CliqueSetResult,
    canonicalize,
    is_maximal,
    is_valid,
    verify_solution,
)
from repro.errors import SolutionError


class TestVerifySolution:
    def test_accepts_valid(self, triangle_pair):
        verify_solution(triangle_pair, 3, [{0, 1, 2}, {3, 4, 5}])

    def test_rejects_wrong_size(self, triangle_pair):
        with pytest.raises(SolutionError, match="distinct nodes"):
            verify_solution(triangle_pair, 3, [{0, 1}])

    def test_rejects_duplicate_nodes_in_clique(self, triangle_pair):
        with pytest.raises(SolutionError):
            verify_solution(triangle_pair, 3, [[0, 0, 1]])

    def test_rejects_missing_edge(self, triangle_pair):
        with pytest.raises(SolutionError, match="missing edge"):
            verify_solution(triangle_pair, 3, [{0, 1, 3}])

    def test_rejects_overlap(self, paper_graph):
        with pytest.raises(SolutionError, match="overlaps"):
            verify_solution(paper_graph, 3, [{0, 2, 5}, {2, 4, 5}])

    def test_works_on_dynamic_graph(self, triangle_pair):
        from repro.graph.dynamic import DynamicGraph

        dyn = DynamicGraph.from_graph(triangle_pair)
        verify_solution(dyn, 3, [{0, 1, 2}])

    def test_is_valid_boolean(self, triangle_pair):
        assert is_valid(triangle_pair, 3, [{0, 1, 2}])
        assert not is_valid(triangle_pair, 3, [{0, 1, 3}])


class TestIsMaximal:
    def test_maximal_full(self, triangle_pair):
        assert is_maximal(triangle_pair, 3, [{0, 1, 2}, {3, 4, 5}])

    def test_not_maximal_when_free_clique_exists(self, triangle_pair):
        assert not is_maximal(triangle_pair, 3, [{0, 1, 2}])

    def test_empty_solution_on_triangle_free(self):
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert is_maximal(path, 3, [])

    def test_on_dynamic_graph(self, triangle_pair):
        from repro.graph.dynamic import DynamicGraph

        dyn = DynamicGraph.from_graph(triangle_pair)
        assert not is_maximal(dyn, 3, [{0, 1, 2}])


class TestResultContainer:
    def test_size_and_iteration(self):
        result = CliqueSetResult([frozenset((0, 1, 2))], k=3, method="lp")
        assert result.size == len(result) == 1
        assert list(result) == [frozenset((0, 1, 2))]

    def test_covered_and_coverage(self):
        result = CliqueSetResult(
            [frozenset((0, 1, 2)), frozenset((4, 5, 6))], k=3
        )
        assert result.covered_nodes == {0, 1, 2, 4, 5, 6}
        assert result.coverage(12) == 0.5
        assert CliqueSetResult([], k=3).coverage(0) == 0.0

    def test_sorted_cliques_deterministic(self):
        result = CliqueSetResult(
            [frozenset((5, 3, 4)), frozenset((2, 0, 1))], k=3
        )
        assert result.sorted_cliques() == [(0, 1, 2), (3, 4, 5)]

    def test_canonicalize(self):
        assert canonicalize([[2, 1], (1, 2)]) == [
            frozenset((1, 2)),
            frozenset((1, 2)),
        ]

    def test_repr(self):
        result = CliqueSetResult([], k=4, method="hg")
        assert "k=4" in repr(result) and "hg" in repr(result)
