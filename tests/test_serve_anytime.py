"""Preemptive scheduling, deadline partials, progress streaming.

Covers the serve-layer half of the anytime protocol: the scheduler's
``Resumable`` timeslicing (preemption by priority, round-robin within a
lane, deadline harvesting with partial results) and the server/client
wiring (``progress`` events, ``error.partial`` envelopes).
"""

import io
import json
import threading
import time

import pytest

from repro.errors import DeadlineExceededError, InvalidParameterError
from repro.graph.generators import powerlaw_cluster, watts_strogatz
from repro.serve import Client, Server
from repro.serve.scheduler import Resumable, Scheduler


class StepCounter:
    """A fake resumable workload: ``total`` slices, optional payloads."""

    def __init__(self, total: int, gate: threading.Event | None = None):
        self.total = total
        self.steps = 0
        self.gate = gate

    def runner(self) -> Resumable:
        def step(seconds):
            if self.gate is not None:
                self.gate.wait(5)
            if seconds is None:
                self.steps = self.total
                return True
            self.steps += 1
            return self.steps >= self.total

        return Resumable(
            step,
            result=lambda: {"steps": self.steps, "done": True},
            partial=lambda: {"steps": self.steps, "partial": True},
        )


class TestSchedulerResumable:
    def test_resumable_runs_to_completion(self):
        with Scheduler(workers=1, quantum=0.001) as sched:
            work = StepCounter(5)
            ticket = sched.submit(lambda remaining: work.runner())
            assert ticket.result(10) == {"steps": 5, "done": True}
        assert sched.stats["completed"] == 1

    def test_quantum_none_drives_in_one_slice(self):
        with Scheduler(workers=1, quantum=None) as sched:
            work = StepCounter(1000)
            ticket = sched.submit(lambda remaining: work.runner())
            assert ticket.result(10)["steps"] == 1000
            assert ticket.preemptions == 0

    def test_deadline_expiry_harvests_partial(self):
        with Scheduler(workers=1, quantum=0.01) as sched:
            gate = threading.Event()
            gate.set()
            slow = StepCounter(10_000)

            def make(remaining):
                runner = slow.runner()
                original = runner.step

                def step(seconds):
                    time.sleep(0.02)
                    return original(seconds)

                runner.step = step
                return runner

            ticket = sched.submit(make, deadline=0.05)
            with pytest.raises(DeadlineExceededError) as err:
                ticket.result(10)
            assert err.value.partial == {"steps": slow.steps, "partial": True}
            assert sched.stats["deadline_partials"] == 1

    def test_higher_lane_preempts_running_resumable(self):
        with Scheduler(workers=1, quantum=0.001) as sched:
            order = []
            started = threading.Event()
            release = threading.Event()

            def long_step(seconds):
                started.set()
                release.wait(5)  # hold the slice until the burst is queued
                time.sleep(0.002)
                return len(order) >= 1  # finish once the high job ran

            long_ticket = sched.submit(
                lambda remaining: Resumable(
                    long_step, result=lambda: "long-done"
                ),
                priority="normal",
            )
            assert started.wait(5)
            high = sched.submit(
                lambda remaining: order.append("high") or "high-done",
                priority="high",
            )
            release.set()
            assert high.result(10) == "high-done"
            assert long_ticket.result(10) == "long-done"
            assert long_ticket.preemptions >= 1
            assert sched.stats["preemptions"] >= 1

    def test_preempted_ticket_can_be_cancelled(self):
        with Scheduler(workers=1, quantum=0.001) as sched:
            started = threading.Event()
            release = threading.Event()

            def step(seconds):
                started.set()
                release.wait(5)
                return False

            long_ticket = sched.submit(
                lambda remaining: Resumable(step, result=lambda: None),
                priority="normal",
            )
            assert started.wait(5)
            blocker = threading.Event()
            sched.submit(lambda remaining: blocker.wait(5), priority="high")
            release.set()
            # The long ticket will be preempted back into its lane while
            # the high job holds the worker; cancel it there.
            deadline = time.monotonic() + 5
            cancelled = False
            while time.monotonic() < deadline and not cancelled:
                cancelled = long_ticket.cancel()
                time.sleep(0.001)
            blocker.set()
            assert cancelled

    def test_invalid_quantum_rejected(self):
        with pytest.raises(InvalidParameterError, match="quantum"):
            Scheduler(workers=1, quantum=0)


@pytest.fixture()
def served():
    server = Server(workers=1, queue_limit=64, quantum=0.01)
    try:
        yield server, Client(server)
    finally:
        server.close()


class TestServerAnytime:
    def test_progress_events_stream_to_callback(self, served):
        _, client = served
        client.register_graph("g", powerlaw_cluster(800, 7, 0.7, seed=2))
        events = []
        result = client.solve(
            "g", 3, "lp", include_cliques=False, on_progress=events.append
        )
        assert result["size"] > 0
        assert events and events[-1]["done"]
        assert all({"size", "bound", "work", "done"} <= set(e) for e in events)

    def test_deadline_partial_over_the_wire(self, served):
        _, client = served
        client.register_graph("hard", watts_strogatz(300, 10, 0.1, seed=1))
        with pytest.raises(DeadlineExceededError) as err:
            client.solve("hard", 3, "opt-bb", deadline=0.1,
                         include_cliques=False)
        partial = err.value.partial
        assert partial is not None and partial["partial"] is True
        assert partial["size"] >= 0 and partial["bound"] >= partial["size"]

    def test_resumable_deadline_accepted_without_time_budget_hook(self, served):
        # lp has no time_budget hook; its resumable engine is what makes
        # the deadline meaningful (preempt + harvest).
        _, client = served
        client.register_graph("g", powerlaw_cluster(200, 5, 0.6, seed=3))
        result = client.solve("g", 3, "lp", deadline=30.0,
                              include_cliques=False)
        assert result["size"] > 0

    def test_explicit_time_budget_keeps_cooperative_path(self, served):
        server, client = served
        client.register_graph("hard", watts_strogatz(300, 10, 0.1, seed=1))
        from repro.errors import OutOfTimeError

        with pytest.raises(OutOfTimeError) as err:
            client.solve("hard", 3, "opt-bb",
                         options={"time_budget": 0.05},
                         include_cliques=False)
        # Cooperative OOT now also carries the incumbent payload.
        assert err.value.partial is None or err.value.partial["partial"]

    def test_quantum_none_deadline_keeps_cooperative_enforcement(self):
        # With preemption disabled the task path cannot check deadlines
        # mid-run, so the server must fall back to PR 4's cooperative
        # time_budget forwarding — the deadline still interrupts opt-bb.
        from repro.errors import OutOfTimeError

        server = Server(workers=1, quantum=None)
        try:
            client = Client(server)
            client.register_graph("hard", watts_strogatz(300, 10, 0.1, seed=1))
            with pytest.raises(OutOfTimeError):
                client.solve("hard", 3, "opt-bb", deadline=0.1,
                             include_cliques=False)
        finally:
            server.close()

    def test_solve_results_identical_to_direct_session(self, served):
        _, client = served
        g = powerlaw_cluster(300, 6, 0.7, seed=4)
        client.register_graph("g", g)
        from repro.core.session import Session

        direct = Session(g).solve(3, "lp")
        served_payload = client.solve("g", 3, "lp")
        assert served_payload["cliques"] == [
            list(c) for c in direct.sorted_cliques()
        ]


class TestStdioProgress:
    def test_stdio_streams_progress_and_final_response(self):
        g = powerlaw_cluster(500, 6, 0.7, seed=5)
        edges = [[int(u), int(v)] for u, v in g.edges()]
        requests = [
            {"id": 1, "op": "register_graph", "name": "g", "edges": edges},
            {"id": 2, "op": "solve", "graph": "g", "k": 3, "method": "lp",
             "progress": True, "include_cliques": False},
            {"id": 3, "op": "shutdown"},
        ]
        stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
        stdout = io.StringIO()
        server = Server(workers=1, quantum=0.005)
        assert server.serve_stdio(stdin, stdout) == 0
        lines = [json.loads(line) for line in stdout.getvalue().splitlines()]
        finals = [l for l in lines if l.get("ok") is not None]
        events = [l for l in lines if l.get("event") == "progress"]
        assert {l["id"] for l in finals} == {1, 2, 3}
        assert all(l["ok"] for l in finals)
        assert events and all(e["id"] == 2 for e in events)
        assert events[-1]["data"]["done"] is True
