"""Thread-safety regression: concurrent solves over one shared session.

The serving layer hands one Session to many scheduler workers; these
tests hammer that sharing pattern with barrier-started thread pools and
assert both correctness (identical solutions to a single-threaded
reference) and single-computation caching (each substrate is computed
exactly once no matter how many threads race for it).
"""

import threading

from repro.core.session import Session
from repro.graph.generators import powerlaw_cluster


def run_threads(count, fn):
    """Start ``count`` threads through a barrier; propagate any failure."""
    barrier = threading.Barrier(count)
    failures = []

    def wrapped(index):
        try:
            barrier.wait()
            fn(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]


class TestConcurrentSolves:
    def test_same_request_from_eight_threads(self):
        graph = powerlaw_cluster(400, 6, 0.6, seed=11)
        reference = Session(graph).solve(3, "lp").sorted_cliques()
        session = Session(graph)
        results = [None] * 8
        run_threads(8, lambda i: results.__setitem__(
            i, session.solve(3, "lp").sorted_cliques()
        ))
        assert all(r == reference for r in results)

    def test_substrates_computed_exactly_once(self):
        graph = powerlaw_cluster(400, 6, 0.6, seed=11)
        session = Session(graph)
        run_threads(8, lambda i: session.solve(3, "lp"))
        info = session.cache_info()
        # One score pass and exactly two orientations — the degeneracy
        # DAG for the score pass plus the cached ascending-score DAG
        # for FindMin (previously rebuilt inline by every solve) — with
        # the other seven threads pure cache hits, not duplicate work.
        assert info["score_passes"] == 1
        assert info["orientations"] == 2

    def test_mixed_methods_and_ks(self):
        graph = powerlaw_cluster(300, 6, 0.6, seed=12)
        requests = [
            (3, "lp"), (3, "gc"), (4, "lp"), (4, "hg"),
            (3, "l"), (4, "gc"), (3, "hg"), (4, "l"),
        ]
        reference_session = Session(graph)
        reference = [
            reference_session.solve(k, m).sorted_cliques() for k, m in requests
        ]
        session = Session(graph)
        results = [None] * len(requests)

        def solve(i):
            k, method = requests[i]
            results[i] = session.solve(k, method).sorted_cliques()

        run_threads(len(requests), solve)
        assert results == reference
        info = session.cache_info()
        # Substrates are per-k, not per-method: exactly one listing and
        # at most one score pass per k (gc derives scores from listings
        # when the listing lands first, so score_passes can be 0).
        assert info["clique_listings"] == 2
        assert info["score_passes"] <= 2

    def test_concurrent_warm_and_solve(self):
        graph = powerlaw_cluster(300, 6, 0.6, seed=13)
        session = Session(graph)

        def work(i):
            if i % 2:
                session.warm([3, 4])
            else:
                session.solve(3, "lp")

        run_threads(6, work)
        info = session.cache_info()
        assert info["ks_with_scores"] == (3, 4)
        assert info["score_passes"] == 2

    def test_listing_budget_failure_does_not_poison_cache(self):
        from repro.errors import OutOfMemoryError

        graph = powerlaw_cluster(300, 6, 0.6, seed=14)
        session = Session(graph)
        errors = []

        def work(i):
            try:
                session.prep.cliques(3, max_cliques=1)
            except OutOfMemoryError as exc:
                errors.append(exc)

        run_threads(4, work)
        assert len(errors) == 4
        # The budget failure cached nothing; an unbudgeted call succeeds.
        assert len(session.prep.cliques(3)) > 1
