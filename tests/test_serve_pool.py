"""Session pool: fingerprint stability, LRU order, byte-budget eviction."""

import threading

import pytest

from repro.core.session import Session
from repro.errors import InvalidParameterError
from repro.graph.generators import powerlaw_cluster, ring_of_cliques
from repro.graph.graph import Graph
from repro.graph.fingerprint import graph_fingerprint
from repro.serve.pool import SessionPool

TRIANGLES = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]


def graph_family(count):
    """Distinct small graphs with distinct fingerprints."""
    return [ring_of_cliques(3 + i, 3) for i in range(count)]


class TestFingerprint:
    def test_stable_across_construction_order(self):
        a = Graph(6, TRIANGLES)
        b = Graph(6, list(reversed(TRIANGLES)))
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_stable_across_duplicate_edges(self):
        a = Graph(6, TRIANGLES)
        b = Graph(6, TRIANGLES + [(2, 1), (5, 4)])
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_edge_change_changes_fingerprint(self):
        a = Graph(6, TRIANGLES)
        b = Graph(6, TRIANGLES + [(0, 3)])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_isolated_nodes_matter(self):
        # Coverage denominators depend on n, so n is part of identity.
        a = Graph(6, TRIANGLES)
        b = Graph(7, TRIANGLES)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_deterministic_across_calls(self):
        g = powerlaw_cluster(200, 4, 0.5, seed=1)
        assert graph_fingerprint(g) == graph_fingerprint(g)
        assert graph_fingerprint(g).startswith("g1-")

    def test_session_fingerprint_cached_and_shared(self):
        g = Graph(6, TRIANGLES)
        session = Session(g)
        assert session.fingerprint() == graph_fingerprint(g)
        assert session.fingerprint() is session.fingerprint()

    def test_rejects_non_graph(self):
        with pytest.raises(InvalidParameterError):
            graph_fingerprint([(0, 1)])


class TestPoolHits:
    def test_equal_graphs_share_a_session(self):
        pool = SessionPool()
        a = Graph(6, TRIANGLES)
        b = Graph(6, list(reversed(TRIANGLES)))
        assert pool.get(a) is pool.get(b)
        assert pool.stats == {"hits": 1, "misses": 1, "evictions": 0}

    def test_distinct_graphs_get_distinct_sessions(self):
        pool = SessionPool()
        g1, g2 = graph_family(2)
        assert pool.get(g1) is not pool.get(g2)
        assert len(pool) == 2

    def test_hit_reuses_warm_substrates(self):
        pool = SessionPool()
        g = Graph(6, TRIANGLES)
        pool.get(g).solve(3)
        info = pool.get(g).cache_info()
        assert info["ks_with_scores"] == (3,)

    def test_lookup_does_not_admit(self):
        pool = SessionPool()
        g = Graph(6, TRIANGLES)
        assert pool.lookup(graph_fingerprint(g)) is None
        session = pool.get(g)
        assert pool.lookup(session.fingerprint()) is session


class TestLRUEviction:
    def test_count_budget_evicts_least_recent(self):
        pool = SessionPool(max_sessions=2)
        g1, g2, g3 = graph_family(3)
        s1, s2 = pool.get(g1), pool.get(g2)
        pool.get(g3)
        assert len(pool) == 2
        assert s1.fingerprint() not in pool
        assert s2.fingerprint() in pool
        assert pool.stats["evictions"] == 1

    def test_hit_refreshes_recency(self):
        pool = SessionPool(max_sessions=2)
        g1, g2, g3 = graph_family(3)
        s1 = pool.get(g1)
        pool.get(g2)
        pool.get(g1)  # refresh g1: g2 becomes LRU
        pool.get(g3)
        assert s1.fingerprint() in pool
        assert len(pool) == 2

    def test_evicted_graph_readmits_cold(self):
        pool = SessionPool(max_sessions=1)
        g1, g2 = graph_family(2)
        s1 = pool.get(g1)
        pool.get(g2)
        assert pool.get(g1) is not s1  # fresh session, caches gone

    def test_fingerprints_in_lru_order(self):
        pool = SessionPool()
        g1, g2 = graph_family(2)
        f1, f2 = pool.get(g1).fingerprint(), pool.get(g2).fingerprint()
        assert pool.fingerprints() == (f1, f2)
        pool.get(g1)
        assert pool.fingerprints() == (f2, f1)


class TestByteBudget:
    def test_byte_budget_evicts_until_it_fits(self):
        # Deterministic injected estimator: 100 bytes per session.
        pool = SessionPool(max_bytes=250, estimate=lambda s: 100)
        graphs = graph_family(4)
        for g in graphs:
            pool.get(g)
        assert len(pool) == 2  # 2 * 100 <= 250 < 3 * 100
        assert pool.stats["evictions"] == 2
        # The survivors are the most recently admitted.
        survivors = pool.fingerprints()
        assert survivors == tuple(graph_fingerprint(g) for g in graphs[2:])

    def test_oversized_session_still_admitted_alone(self):
        pool = SessionPool(max_bytes=10, estimate=lambda s: 100)
        g1, g2 = graph_family(2)
        pool.get(g1)
        pool.get(g2)
        assert len(pool) == 1  # never evicts down to zero

    def test_real_estimator_monotone_in_cache_content(self):
        g = powerlaw_cluster(300, 5, 0.5, seed=2)
        session = Session(g)
        cold = session.estimated_bytes()
        session.solve(3)
        warm = session.estimated_bytes()
        session.prep.cliques(3)
        listed = session.estimated_bytes()
        assert cold < warm < listed

    def test_growth_after_admission_is_reclaimed_on_next_admit(self):
        sizes = {}
        pool = SessionPool(max_bytes=300, estimate=lambda s: sizes.get(id(s), 100))
        g1, g2, g3 = graph_family(3)
        s1 = pool.get(g1)
        sizes[id(s1)] = 100
        s2 = pool.get(g2)
        sizes[id(s2)] = 100
        sizes[id(s1)] = 250  # s1's caches grew after admission
        s3 = pool.get(g3)
        sizes[id(s3)] = 100
        # 250 + 100 + 100 > 300 -> evict s1 (LRU), then 200 fits.
        assert s1.fingerprint() not in pool
        assert len(pool) == 2

    def test_invalid_budgets_rejected(self):
        with pytest.raises(InvalidParameterError):
            SessionPool(max_sessions=0)
        with pytest.raises(InvalidParameterError):
            SessionPool(max_bytes=-1)


class TestPoolManagement:
    def test_explicit_evict_and_clear(self):
        pool = SessionPool()
        g1, g2 = graph_family(2)
        f1 = pool.get(g1).fingerprint()
        pool.get(g2)
        assert pool.evict(f1)
        assert not pool.evict(f1)
        assert pool.clear() == 1
        assert len(pool) == 0

    def test_info_snapshot(self):
        pool = SessionPool(max_sessions=5, estimate=lambda s: 7)
        pool.get(Graph(6, TRIANGLES))
        info = pool.info()
        assert info["sessions"] == 1
        assert info["bytes"] == 7
        assert info["max_sessions"] == 5
        assert info["misses"] == 1

    def test_concurrent_get_single_admission(self):
        pool = SessionPool()
        g = powerlaw_cluster(100, 4, 0.5, seed=5)
        barrier = threading.Barrier(8)
        sessions = []

        def worker():
            barrier.wait()
            sessions.append(pool.get(g))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(s) for s in sessions}) == 1
        assert pool.stats["misses"] == 1
        assert pool.stats["hits"] == 7
