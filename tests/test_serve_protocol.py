"""End-to-end protocol tests: server + in-process client.

The load-bearing assertion throughout: anything returned by the serving
layer is identical to what a direct ``Session`` call returns — serving
is a transport, never a different algorithm.
"""

import threading

import pytest

from repro.analysis.bounds import optimum_upper_bounds
from repro.core.session import Session
from repro.dynamic.maintainer import DynamicDisjointCliques
from repro.errors import (
    InvalidParameterError,
    OverloadedError,
    ProtocolError,
    UnknownFeedError,
    UnknownGraphError,
)
from repro.graph.generators import powerlaw_cluster
from repro.graph.graph import Graph
from repro.serve import Client, Server
from repro.serve.protocol import (
    OPERATIONS,
    decode_request,
    encode,
    error_code_for,
    error_response,
)

TRIANGLES = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]


@pytest.fixture()
def served():
    server = Server(workers=2, max_sessions=8)
    yield server, Client(server)
    server.close()


@pytest.fixture()
def social():
    return powerlaw_cluster(250, 5, 0.6, seed=21)


class TestAdmin:
    def test_ping(self, served):
        _, client = served
        assert client.ping() == {"pong": True}

    def test_register_graph_roundtrip(self, served):
        _, client = served
        reg = client.register_graph("tiny", Graph(6, TRIANGLES))
        assert reg["n"] == 6 and reg["m"] == 6
        assert reg["fingerprint"].startswith("g1-")

    def test_register_requires_exactly_one_source(self, served):
        _, client = served
        with pytest.raises(ProtocolError):
            client.call("register_graph", name="x")
        with pytest.raises(ProtocolError):
            client.call(
                "register_graph", name="x", edges=[[0, 1]], dataset="FTB"
            )

    def test_register_from_dataset(self, served):
        _, client = served
        reg = client.call("register_graph", name="ftb", dataset="FTB")
        assert reg["n"] == 115

    def test_register_from_path(self, served, tmp_path):
        _, client = served
        path = tmp_path / "g.edges"
        path.write_text("".join(f"{u} {v}\n" for u, v in TRIANGLES))
        reg = client.call("register_graph", name="file", path=str(path))
        assert reg["m"] == 6

    def test_unregister_graph_frees_name_and_session(self, served):
        server, client = served
        reg = client.register_graph("tiny", Graph(6, TRIANGLES))
        res = client.unregister_graph("tiny")
        assert res["unregistered"] and res["session_evicted"]
        assert reg["fingerprint"] not in server.pool
        with pytest.raises(UnknownGraphError):
            client.solve("tiny", 3)
        with pytest.raises(UnknownGraphError):
            client.unregister_graph("tiny")

    def test_unregister_keeps_session_shared_by_another_name(self, served):
        server, client = served
        reg = client.register_graph("a", Graph(6, TRIANGLES))
        client.register_graph("b", Graph(6, list(reversed(TRIANGLES))))
        res = client.unregister_graph("a")
        assert res["unregistered"] and not res["session_evicted"]
        assert reg["fingerprint"] in server.pool  # "b" still needs it
        assert client.solve("b", 3)["size"] == 2

    def test_booleans_are_not_integers_on_the_wire(self, served):
        _, client = served
        with pytest.raises(ProtocolError):
            client.call("register_graph", name="x", edges=[[True, False]])
        client.register_graph("g", Graph(6, TRIANGLES))
        with pytest.raises(ProtocolError):
            client.call("solve", graph="g", k=True)
        with pytest.raises(ProtocolError):
            client.call("solve", graph="g", k=3, deadline=True)
        feed = client.feed_open("g", k=3)["feed"]
        with pytest.raises(ProtocolError):
            client.call("feed_push", feed=feed, updates=[["insert", True, 2]])

    def test_stats_shape(self, served):
        _, client = served
        client.register_graph("tiny", Graph(6, TRIANGLES))
        stats = client.stats()
        assert stats["graphs"] == ["tiny"]
        assert stats["pool"]["sessions"] == 1
        assert "queued" in stats["scheduler"]

    def test_shutdown_rejects_further_requests(self, served):
        _, client = served
        client.shutdown()
        with pytest.raises(InvalidParameterError):
            client.ping()


class TestCompute:
    def test_solve_matches_direct_session(self, served, social):
        _, client = served
        client.register_graph("social", social)
        for k, method in [(3, "lp"), (3, "gc"), (4, "lp"), (4, "hg")]:
            via_serve = client.solve("social", k, method)
            direct = Session(social).solve(k, method)
            assert via_serve["cliques"] == [
                list(c) for c in direct.sorted_cliques()
            ], f"serving diverged from direct solve for {method} k={k}"
            assert via_serve["size"] == direct.size

    def test_solve_options_forwarded(self, served, social):
        _, client = served
        client.register_graph("social", social)
        res = client.solve("social", 3, "lp", options={"workers": 1})
        assert res["method"] == "lp"

    def test_solve_unknown_option_rejected_at_admission(self, served, social):
        _, client = served
        client.register_graph("social", social)
        with pytest.raises(InvalidParameterError, match="valid options"):
            client.solve("social", 3, "lp", options={"time_budgt": 1})

    def test_include_cliques_false_trims_payload(self, served, social):
        _, client = served
        client.register_graph("social", social)
        res = client.solve("social", 3, include_cliques=False)
        assert "cliques" not in res and res["size"] > 0

    def test_count_and_bounds_match_direct(self, served, social):
        _, client = served
        client.register_graph("social", social)
        session = Session(social)
        assert client.count("social", 3)["count"] == session.prep.clique_count(3)
        served_bounds = client.bounds("social", 3)
        direct = optimum_upper_bounds(social, 3)
        assert served_bounds["best"] == direct.best
        assert served_bounds["count_bound"] == direct.count_bound

    def test_warm_prefills_the_pooled_session(self, served, social):
        server, client = served
        client.register_graph("social", social)
        cache = client.warm("social", [3, 4])["cache"]
        assert cache["ks_with_scores"] == [3, 4] or cache["ks_with_scores"] == (3, 4)
        # A later solve through the pool is a pure cache hit.
        session = server.pool.get(social)
        passes = session.cache_info()["score_passes"]
        client.solve("social", 3)
        assert session.cache_info()["score_passes"] == passes

    def test_unknown_graph_typed_error(self, served):
        _, client = served
        with pytest.raises(UnknownGraphError):
            client.solve("ghost", 3)

    def test_deadline_rejected_for_unsafe_method(self, served, social):
        _, client = served
        client.register_graph("social", social)
        # gc has no time_budget hook and is not deadline_safe.
        with pytest.raises(InvalidParameterError, match="deadline"):
            client.solve("social", 3, "gc", deadline=5.0)

    def test_deadline_accepted_for_budget_method(self, served):
        _, client = served
        client.register_graph("tiny", Graph(6, TRIANGLES))
        res = client.solve("tiny", 3, "opt", deadline=60.0)
        assert res["size"] == 2  # exact optimum on two disjoint triangles

    def test_priority_and_deadline_fields_validated(self, served, social):
        _, client = served
        client.register_graph("social", social)
        with pytest.raises(InvalidParameterError):
            client.solve("social", 3, priority="urgent")

    def test_overload_surfaces_as_typed_error(self, social):
        server = Server(workers=1, queue_limit=1)
        client = Client(server)
        client.register_graph("social", social)
        release = threading.Event()
        started = threading.Event()

        def gate(remaining):
            started.set()
            release.wait(10)
            return {}

        server.scheduler.submit(gate)
        started.wait(5)
        client.start("solve", graph="social", k=3)  # fills the queue
        with pytest.raises(OverloadedError):
            client.solve("social", 3)
        release.set()
        server.close()


class TestFeeds:
    def test_feed_tracks_direct_maintainer(self, served, social):
        _, client = served
        client.register_graph("social", social)
        feed = client.feed_open("social", k=3, policy={"max_updates": 4})["feed"]

        updates = [("delete", u, v) for u, v in sorted(social.edges())[:10]]
        client.feed_push(feed, updates)
        served_solution = client.feed_solution(feed)

        # Mirror the feed's exact trajectory: same lp-seeded maintainer,
        # same 4/4/2 batch chunking (two size-triggered flushes, then
        # the flush-consistent read drains the remaining two updates).
        mirror = DynamicDisjointCliques(social, 3)
        for chunk_start in range(0, len(updates), 4):
            mirror.apply_batch(updates[chunk_start : chunk_start + 4])
        assert served_solution["size"] == mirror.size
        assert served_solution["cliques"] == [
            list(c) for c in mirror.solution().sorted_cliques()
        ]

        # Both describe the same final graph; invariants hold via the
        # maintainer's own checks.
        info = client.call("stats")["feeds"][feed]
        assert info["graph_m"] == social.m - 10

    def test_push_buffers_below_threshold(self, served, social):
        _, client = served
        client.register_graph("social", social)
        feed = client.feed_open("social", k=3, policy={"max_updates": 100})["feed"]
        res = client.feed_push(feed, [("delete", *sorted(social.edges())[0])])
        assert res["flushed"] is False and res["pending"] == 1
        flush = client.feed_flush(feed)
        assert flush["flushed"] is True and flush["applied"] == 1

    def test_size_trigger_flushes(self, served, social):
        _, client = served
        client.register_graph("social", social)
        feed = client.feed_open("social", k=3, policy={"max_updates": 2})["feed"]
        res = client.feed_push(
            feed, [("delete", *e) for e in sorted(social.edges())[:4]]
        )
        assert res["flushed"] is True and res["pending"] == 0

    def test_solution_is_flush_consistent(self, served, social):
        _, client = served
        client.register_graph("social", social)
        feed = client.feed_open("social", k=3)["feed"]
        edge = sorted(social.edges())[0]
        client.feed_push(feed, [("delete", *edge)])
        client.feed_solution(feed)  # must apply the pending delete first
        info = client.call("stats")["feeds"][feed]
        assert info["pending"] == 0 and info["graph_m"] == social.m - 1

    def test_feed_close_and_unknown_feed(self, served, social):
        _, client = served
        client.register_graph("social", social)
        feed = client.feed_open("social", k=3)["feed"]
        assert client.feed_close(feed)["closed"]
        with pytest.raises(UnknownFeedError):
            client.feed_push(feed, [("insert", 0, 1)])

    def test_invalid_flush_policy_rejected_at_open(self, served, social):
        _, client = served
        client.register_graph("social", social)
        with pytest.raises(InvalidParameterError, match="backend"):
            client.feed_open("social", k=3, policy={"backend": "cssr"})
        with pytest.raises(InvalidParameterError):
            client.feed_open("social", k=3, policy={"max_updates": 0})
        with pytest.raises(ProtocolError):
            client.feed_open("social", k=3, policy={"flush_every": 5})
        assert client.call("stats")["feeds"] == {}

    def test_duplicate_feed_id_rejected(self, served, social):
        _, client = served
        client.register_graph("social", social)
        client.feed_open("social", k=3, feed="mine")
        with pytest.raises(InvalidParameterError):
            client.feed_open("social", k=3, feed="mine")

    def test_bad_update_shape_rejected_before_buffering(self, served, social):
        _, client = served
        client.register_graph("social", social)
        feed = client.feed_open("social", k=3)["feed"]
        with pytest.raises(ProtocolError):
            client.call("feed_push", feed=feed, updates=[["insert", 1]])
        with pytest.raises(InvalidParameterError):
            client.call("feed_push", feed=feed, updates=[["upsert", 0, 1]])
        assert client.call("stats")["feeds"][feed]["pending"] == 0

    def test_malformed_update_cannot_poison_the_buffer(self, served, social):
        _, client = served
        client.register_graph("social", social)
        feed = client.feed_open("social", k=3)["feed"]
        # Valid updates buffer; a later push with an out-of-range node
        # or self-loop is rejected whole (GraphError server-side, which
        # travels as INVALID_ARGUMENT), leaving the valid pending
        # updates intact and applicable.
        good = [("delete", *e) for e in sorted(social.edges())[:3]]
        client.feed_push(feed, good)
        with pytest.raises(InvalidParameterError):
            client.feed_push(feed, [("insert", 0, social.n + 5)])
        with pytest.raises(InvalidParameterError):
            client.feed_push(feed, [("insert", 7, 7)])
        info = client.call("stats")["feeds"][feed]
        assert info["pending"] == 3  # the poison never entered
        flush = client.feed_flush(feed)
        assert flush["flushed"] and flush["applied"] == 3
        assert client.call("stats")["sweep_errors"] == 0


class TestProtocolModule:
    def test_decode_rejects_malformed(self):
        with pytest.raises(ProtocolError):
            decode_request("not json")
        with pytest.raises(ProtocolError):
            decode_request("[1, 2]")
        with pytest.raises(ProtocolError):
            decode_request('{"no": "op"}')
        with pytest.raises(ProtocolError):
            decode_request('{"op": "frobnicate"}')
        with pytest.raises(ProtocolError):
            decode_request('{"op": "ping", "id": [1]}')

    def test_encode_decode_roundtrip(self):
        message = {"op": "solve", "id": 7, "graph": "g", "k": 3}
        assert decode_request(encode(message)) == message

    def test_error_codes_cover_the_serve_errors(self):
        assert error_code_for(OverloadedError("x")) == "OVERLOADED"
        assert error_code_for(UnknownGraphError("x")) == "UNKNOWN_GRAPH"
        assert error_code_for(RuntimeError("x")) == "INTERNAL"
        envelope = error_response(3, OverloadedError("busy"))
        assert envelope == {
            "id": 3,
            "ok": False,
            "error": {"code": "OVERLOADED", "message": "busy"},
        }

    def test_operations_are_documented_in_serving_md(self):
        from pathlib import Path

        doc = (
            Path(__file__).resolve().parent.parent / "docs" / "serving.md"
        ).read_text(encoding="utf-8")
        for op in OPERATIONS:
            assert f"`{op}`" in doc, f"docs/serving.md is missing op {op}"
