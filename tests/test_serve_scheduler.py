"""Scheduler: priorities, deadlines, cancellation, load shedding."""

import threading
import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    OutOfTimeError,
    OverloadedError,
    RequestCancelledError,
)
from repro.serve.scheduler import PRIORITIES, Scheduler


def make_gate():
    """A task that blocks its worker until released."""
    release = threading.Event()
    started = threading.Event()

    def task(remaining):
        started.set()
        release.wait(10)
        return "gated"

    return task, started, release


class TestBasics:
    def test_runs_and_returns(self):
        with Scheduler(workers=2) as sched:
            tickets = [sched.submit(lambda r, i=i: i * i) for i in range(10)]
            assert [t.result(5) for t in tickets] == [i * i for i in range(10)]
        assert sched.info()["completed"] == 10

    def test_exceptions_propagate(self):
        with Scheduler() as sched:
            def boom(remaining):
                raise ValueError("broken request")

            ticket = sched.submit(boom)
            with pytest.raises(ValueError, match="broken request"):
                ticket.result(5)
        assert sched.info()["failed"] == 1

    def test_remaining_budget_forwarded(self):
        with Scheduler() as sched:
            ticket = sched.submit(lambda remaining: remaining, deadline=30.0)
            remaining = ticket.result(5)
        assert 0 < remaining <= 30.0

    def test_no_deadline_forwards_none(self):
        with Scheduler() as sched:
            assert sched.submit(lambda remaining: remaining).result(5) is None

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            Scheduler(workers=0)
        with pytest.raises(InvalidParameterError):
            Scheduler(queue_limit=0)
        with Scheduler() as sched:
            with pytest.raises(InvalidParameterError):
                sched.submit(lambda r: None, priority="urgent")
            with pytest.raises(InvalidParameterError):
                sched.submit(lambda r: None, deadline=0)

    def test_submit_after_shutdown_rejected(self):
        sched = Scheduler()
        sched.shutdown()
        with pytest.raises(InvalidParameterError):
            sched.submit(lambda r: None)

    def test_shutdown_drains_queued_work(self):
        sched = Scheduler(workers=1)
        tickets = [sched.submit(lambda r, i=i: i) for i in range(20)]
        sched.shutdown(wait=True)
        assert [t.result(0) for t in tickets] == list(range(20))


class TestPriorityLanes:
    def test_high_lane_jumps_the_queue(self):
        order = []
        with Scheduler(workers=1) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)  # worker busy: everything below queues
            low = sched.submit(lambda r: order.append("low"), priority="low")
            normal = sched.submit(lambda r: order.append("normal"))
            high = sched.submit(lambda r: order.append("high"), priority="high")
            release.set()
            for t in (gate, low, normal, high):
                t.result(5)
        assert order == ["high", "normal", "low"]

    def test_fifo_within_a_lane(self):
        order = []
        with Scheduler(workers=1) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)
            tickets = [
                sched.submit(lambda r, i=i: order.append(i)) for i in range(5)
            ]
            release.set()
            for t in [gate, *tickets]:
                t.result(5)
        assert order == list(range(5))

    def test_priorities_constant(self):
        assert PRIORITIES == ("high", "normal", "low")


class TestDeadlines:
    def test_expired_in_queue_is_shed_not_run(self):
        ran = []
        with Scheduler(workers=1) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)
            doomed = sched.submit(lambda r: ran.append(True), deadline=0.05)
            time.sleep(0.2)  # deadline passes while queued
            release.set()
            gate.result(5)
            with pytest.raises(DeadlineExceededError):
                doomed.result(5)
        assert not ran
        assert sched.info()["shed_deadline"] == 1

    def test_deadline_error_is_out_of_time(self):
        # Serving deadline misses must look like the paper's OOT marker
        # to generic budget-handling code.
        assert issubclass(DeadlineExceededError, OutOfTimeError)

    def test_met_deadline_completes_normally(self):
        with Scheduler() as sched:
            assert sched.submit(lambda r: "ok", deadline=30).result(5) == "ok"


class TestCancellation:
    def test_cancel_queued_ticket_never_runs(self):
        ran = []
        with Scheduler(workers=1) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)
            victim = sched.submit(lambda r: ran.append(True))
            assert victim.cancel()
            release.set()
            gate.result(5)
            with pytest.raises(RequestCancelledError):
                victim.result(5)
        assert not ran
        assert victim.state == "cancelled"
        assert sched.info()["cancelled"] == 1

    def test_cancel_running_ticket_fails(self):
        with Scheduler(workers=1) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)
            assert not gate.cancel()
            release.set()
            assert gate.result(5) == "gated"

    def test_cancel_resolved_ticket_fails(self):
        with Scheduler() as sched:
            ticket = sched.submit(lambda r: 1)
            ticket.result(5)
            assert not ticket.cancel()


class TestBackpressure:
    def test_overload_shed_at_admission(self):
        with Scheduler(workers=1, queue_limit=2) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)  # worker pinned; queue empty again
            sched.submit(lambda r: 1)
            sched.submit(lambda r: 2)
            with pytest.raises(OverloadedError):
                sched.submit(lambda r: 3)
            assert sched.info()["shed_overload"] == 1
            release.set()
            gate.result(5)

    def test_cancel_frees_the_queue_slot_immediately(self):
        # A cancelled backlog must not keep shedding new work while a
        # worker is still busy (the corpse is removed at cancel time,
        # not lazily at dequeue).
        with Scheduler(workers=1, queue_limit=2) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)
            a = sched.submit(lambda r: "a")
            b = sched.submit(lambda r: "b")
            with pytest.raises(OverloadedError):
                sched.submit(lambda r: "c")
            assert a.cancel() and b.cancel()
            assert sched.queued() == 0
            replacement = sched.submit(lambda r: "room again")
            release.set()
            assert gate.result(5) == "gated"
            assert replacement.result(5) == "room again"
        assert sched.info()["cancelled"] == 2

    def test_queue_drains_and_accepts_again(self):
        with Scheduler(workers=1, queue_limit=1) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            started.wait(5)
            first = sched.submit(lambda r: "first")
            with pytest.raises(OverloadedError):
                sched.submit(lambda r: "second")
            release.set()
            assert first.result(5) == "first"
            assert sched.submit(lambda r: "third").result(5) == "third"


class TestCallbacks:
    def test_done_callback_fires_once(self):
        seen = []
        with Scheduler() as sched:
            ticket = sched.submit(lambda r: 42)
            ticket.result(5)
            ticket.add_done_callback(lambda t: seen.append(t.result(0)))
        assert seen == [42]

    def test_raising_callback_does_not_kill_the_worker(self):
        # A transport callback hitting e.g. BrokenPipeError must not
        # take the worker thread down with it — later tickets still run.
        with Scheduler(workers=1) as sched:
            first = sched.submit(lambda r: "first")
            first.result(5)
            first.add_done_callback(lambda t: (_ for _ in ()).throw(
                BrokenPipeError("downstream closed")
            ))
            pending = sched.submit(lambda r: "still alive")
            pending.add_done_callback(lambda t: 1 / 0)
            assert pending.result(5) == "still alive"
            assert sched.submit(lambda r: "after").result(5) == "after"

    def test_callback_registered_before_completion(self):
        seen = []
        done = threading.Event()
        with Scheduler(workers=1) as sched:
            gate_task, started, release = make_gate()
            gate = sched.submit(gate_task)
            gate.add_done_callback(lambda t: (seen.append(t.result(0)), done.set()))
            started.wait(5)
            release.set()
            assert done.wait(5)
        assert seen == ["gated"]
