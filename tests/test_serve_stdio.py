"""The ``repro serve`` stdio transport: scripted NDJSON exchanges.

These run the real CLI in a subprocess — the same path the CI serve
smoke step and any piped deployment uses — and assert response
matching by id, out-of-order streaming safety, and clean shutdown.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")


def exchange(requests, *, args=()):
    """Pipe NDJSON requests through ``python -m repro serve``."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--quiet", *args],
        input="".join(json.dumps(r) + "\n" for r in requests),
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    assert proc.returncode == 0, proc.stderr
    responses = [json.loads(line) for line in proc.stdout.splitlines() if line]
    return {r["id"]: r for r in responses if r.get("id") is not None}, responses


TINY = [[0, 1], [0, 2], [1, 2], [3, 4], [3, 5], [4, 5]]


class TestStdioServe:
    def test_scripted_exchange_and_clean_shutdown(self):
        by_id, responses = exchange([
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "register_graph", "name": "g", "edges": TINY},
            {"id": 3, "op": "solve", "graph": "g", "k": 3},
            {"id": 4, "op": "count", "graph": "g", "k": 3},
            {"id": 5, "op": "stats"},
            {"id": 6, "op": "shutdown"},
        ])
        assert by_id[1]["result"] == {"pong": True}
        assert by_id[2]["result"]["m"] == 6
        assert by_id[3]["result"]["cliques"] == [[0, 1, 2], [3, 4, 5]]
        assert by_id[4]["result"]["count"] == 2
        assert by_id[5]["result"]["pool"]["sessions"] == 1
        assert by_id[6]["result"] == {"shutting_down": True}
        assert len(responses) == 6

    def test_compute_responses_arrive_even_after_shutdown_line(self):
        # A solve may still be on a worker when the shutdown line is
        # read; the server must drain it before exiting.
        by_id, _ = exchange([
            {"id": 1, "op": "register_graph", "name": "g", "edges": TINY},
            {"id": 2, "op": "solve", "graph": "g", "k": 3},
            {"id": 3, "op": "shutdown"},
        ], args=("--workers", "2"))
        assert by_id[2]["ok"] and by_id[2]["result"]["size"] == 2

    def test_errors_are_enveloped_not_fatal(self):
        by_id, responses = exchange([
            {"id": 1, "op": "solve", "graph": "ghost", "k": 3},
            {"id": 2, "op": "register_graph", "name": "g", "edges": TINY},
            {"id": 3, "op": "solve", "graph": "g", "k": "three"},
            {"id": 4, "op": "ping"},
            {"id": 5, "op": "shutdown"},
        ])
        assert by_id[1]["error"]["code"] == "UNKNOWN_GRAPH"
        assert by_id[3]["error"]["code"] == "PROTOCOL_ERROR"
        assert by_id[4]["result"] == {"pong": True}

    def test_malformed_line_gets_null_id_error(self):
        _, responses = exchange([])
        # EOF with no requests is a clean exit...
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--quiet"],
            input="this is not json\n" + json.dumps({"id": 1, "op": "ping"}) + "\n",
            capture_output=True,
            text=True,
            timeout=120,
            env={**os.environ, "PYTHONPATH": SRC},
        )
        assert proc.returncode == 0
        lines = [json.loads(line) for line in proc.stdout.splitlines()]
        assert lines[0]["ok"] is False
        assert lines[0]["error"]["code"] == "PROTOCOL_ERROR"
        assert lines[1]["result"] == {"pong": True}

    def test_eof_without_shutdown_is_clean(self):
        by_id, _ = exchange([
            {"id": 1, "op": "register_graph", "name": "g", "edges": TINY},
            {"id": 2, "op": "solve", "graph": "g", "k": 3},
        ])
        assert by_id[2]["result"]["size"] == 2
