"""Tests for the Session API: preprocessing reuse, batches, wrappers."""

import pytest

from repro import Graph, Session, SolveRequest, find_disjoint_cliques
from repro.cliques import counting, listing
from repro.errors import InvalidParameterError, OutOfMemoryError, OutOfTimeError
from repro.graph.dynamic import DynamicGraph


@pytest.fixture
def listing_spy(monkeypatch):
    """Count clique-listing enumerations performed by sessions."""
    calls = []
    real = listing.iter_cliques_oriented

    def spy(dag, k, backend="auto"):
        calls.append(k)
        return real(dag, k, backend=backend)

    monkeypatch.setattr(listing, "iter_cliques_oriented", spy)
    return calls


@pytest.fixture
def score_spy(monkeypatch):
    """Count node-score counting passes performed by sessions."""
    calls = []
    real = counting.node_scores

    def spy(graph, k, order="degeneracy", dag=None, backend="auto"):
        calls.append(k)
        return real(graph, k, order, dag, backend=backend)

    monkeypatch.setattr(counting, "node_scores", spy)
    return calls


class TestPreprocessingCache:
    def test_same_k_lists_cliques_exactly_once(self, paper_graph, listing_spy):
        session = Session(paper_graph)
        first = session.solve(3, "gc")
        second = session.solve(3, "gc")
        assert listing_spy == [3]
        assert first.sorted_cliques() == second.sorted_cliques()

    def test_new_k_triggers_exactly_one_new_listing(self, paper_graph, listing_spy):
        session = Session(paper_graph)
        session.solve(3, "gc")
        session.solve(3, "gc")
        session.solve(4, "gc")
        assert listing_spy == [3, 4]

    def test_listing_shared_across_methods(self, paper_graph, listing_spy):
        session = Session(paper_graph)
        session.solve(3, "gc")
        session.solve(3, "opt")
        session.solve(3, "opt-bb")
        assert listing_spy == [3]

    def test_score_pass_shared_and_cached(self, paper_graph, score_spy):
        session = Session(paper_graph)
        session.solve(3, "lp")
        session.solve(3, "l")
        session.solve(3, "lp")
        assert score_spy == [3]
        session.solve(4, "lp")
        assert score_spy == [3, 4]

    def test_scores_derived_from_cached_listing(self, paper_graph, score_spy):
        session = Session(paper_graph)
        session.solve(3, "gc")  # caches the listing, derives scores from it
        session.solve(3, "lp")
        assert score_spy == []  # never needed a counting pass

    def test_derived_scores_match_counting_pass(self, paper_graph):
        with_listing = Session(paper_graph)
        with_listing.prep.cliques(3)
        direct = Session(paper_graph)
        assert list(with_listing.prep.scores(3)) == list(direct.prep.scores(3))

    def test_cache_info_counters(self, paper_graph):
        session = Session(paper_graph)
        session.solve(3, "gc")
        session.solve(3, "gc")
        info = session.cache_info()
        assert info["clique_listings"] == 1
        assert info["ks_with_cliques"] == (3,)
        assert info["cache_hits"] > 0

    def test_warm_prewarms_scores(self, paper_graph, score_spy):
        session = Session(paper_graph).warm([3])
        assert score_spy == [3]
        session.solve(3, "lp")
        assert score_spy == [3]

    def test_warm_with_cliques(self, paper_graph, listing_spy):
        session = Session(paper_graph).warm([3], cliques=True)
        session.solve(3, "gc")
        assert listing_spy == [3]

    def test_cached_listing_still_honours_budget(self, paper_graph):
        session = Session(paper_graph)
        session.solve(3, "gc")  # caches all 7 triangles
        with pytest.raises(OutOfMemoryError):
            session.solve(3, "gc", max_cliques=3)

    def test_budget_failure_caches_nothing(self, paper_graph, listing_spy):
        session = Session(paper_graph)
        with pytest.raises(OutOfMemoryError):
            session.solve(3, "gc", max_cliques=3)
        assert session.cache_info()["ks_with_cliques"] == ()
        session.solve(3, "gc")  # full listing still possible afterwards
        assert session.solve(3, "gc").size == 3


class TestSessionResultsMatchOneShot:
    @pytest.mark.parametrize("method", ["hg", "gc", "l", "lp", "opt", "opt-bb"])
    def test_same_solution_as_legacy_api(self, paper_graph, method):
        session = Session(paper_graph)
        fresh = find_disjoint_cliques(paper_graph, 3, method=method)
        via_session = session.solve(3, method)
        assert via_session.sorted_cliques() == fresh.sorted_cliques()
        assert via_session.method == fresh.method

    def test_interleaved_methods_consistent(self, random_graphs):
        for g in random_graphs:
            session = Session(g)
            gc = session.solve(3, "gc")
            lp = session.solve(3, "lp")
            # Theorem 4: GC and LP coincide under the shared clique key.
            assert gc.sorted_cliques() == lp.sorted_cliques()

    def test_core_numbers_accessor(self, paper_graph):
        from repro.graph.kcore import core_numbers

        session = Session(paper_graph)
        assert list(session.prep.core_numbers()) == list(core_numbers(paper_graph))
        assert session.cache_info()["core_numbers"]


class TestSessionValidation:
    def test_rejects_dynamic_graph(self, triangle_pair):
        dyn = DynamicGraph.from_graph(triangle_pair)
        with pytest.raises(InvalidParameterError, match="snapshot"):
            Session(dyn)

    def test_rejects_bad_k(self, triangle_pair):
        session = Session(triangle_pair)
        with pytest.raises(InvalidParameterError, match="k must be"):
            session.solve(1)
        with pytest.raises(InvalidParameterError, match="k must be"):
            session.solve("three")
        with pytest.raises(InvalidParameterError, match="k must be"):
            session.solve(3.0)

    def test_numpy_k_accepted(self, triangle_pair):
        import numpy as np

        assert Session(triangle_pair).solve(np.int64(3)).size == 2

    def test_unknown_default_method_rejected(self, triangle_pair):
        with pytest.raises(InvalidParameterError, match="unknown method"):
            Session(triangle_pair, default_method="magic")

    def test_repr(self, triangle_pair):
        session = Session(triangle_pair)
        session.solve(3)
        assert "cached_ks=(3,)" in repr(session)


class TestSolveMany:
    def test_batch_of_ints(self, paper_graph):
        session = Session(paper_graph)
        results = session.solve_many([3, 4])
        assert [r.k for r in results] == [3, 4]
        assert all(r.method == "lp" for r in results)

    def test_mixed_request_forms(self, paper_graph):
        session = Session(paper_graph)
        results = session.solve_many(
            [
                3,
                (3, "gc"),
                (3, "gc", {"max_cliques": 100}),
                {"k": 3, "method": "hg"},
                SolveRequest(3, "opt"),
            ]
        )
        assert [r.method for r in results] == ["lp", "gc", "gc", "hg", "opt"]

    def test_batch_shares_cache(self, paper_graph, listing_spy):
        session = Session(paper_graph)
        session.solve_many([(3, "gc"), (3, "opt"), (3, "opt-bb")])
        assert listing_spy == [3]

    def test_progress_hook(self, paper_graph):
        session = Session(paper_graph)
        seen = []
        session.solve_many(
            [3, (3, "gc")],
            on_progress=lambda done, total, req, res: seen.append(
                (done, total, req.method, res.size)
            ),
        )
        assert seen == [(1, 2, "lp", 3), (2, 2, "gc", 3)]

    def test_deadline_exceeded(self, paper_graph):
        session = Session(paper_graph)
        with pytest.raises(OutOfTimeError, match="deadline"):
            session.solve_many([3, 4], deadline=0.0)

    def test_generous_deadline_completes(self, paper_graph):
        session = Session(paper_graph)
        assert len(session.solve_many([3], deadline=60.0)) == 1

    def test_bad_request_rejected(self, paper_graph):
        session = Session(paper_graph)
        with pytest.raises(InvalidParameterError, match="solve request"):
            session.solve_many([object()])
        with pytest.raises(InvalidParameterError, match="request tuple"):
            session.solve_many([(3, "lp", {}, "extra")])

    def test_float_k_not_truncated(self, paper_graph):
        # 3.9 must be rejected, not silently solved as k=3.
        session = Session(paper_graph)
        with pytest.raises(InvalidParameterError, match="solve request"):
            session.solve_many([3.9])

    def test_deadline_forwarded_as_time_budget(self, paper_graph):
        from repro.core.registry import ExactOptions, SolverRegistry
        from repro.core.result import CliqueSetResult

        registry = SolverRegistry()
        seen = {}

        @registry.register(
            "probe", summary="records options", exact=True,
            options=ExactOptions, supports_time_budget=True,
        )
        def _probe(prep, k, opts):
            seen["time_budget"] = opts.time_budget
            return CliqueSetResult([], k=k, method="probe")

        session = Session(paper_graph, registry=registry, default_method="probe")
        # Budget-capable method: remaining deadline is injected...
        session.solve_many([(3, "probe")], deadline=30.0)
        assert seen["time_budget"] is not None and 0 < seen["time_budget"] <= 30.0
        # ...but an explicit time_budget wins.
        session.solve_many([(3, "probe", {"time_budget": 1.5})], deadline=30.0)
        assert seen["time_budget"] == 1.5
        # No deadline -> nothing injected.
        session.solve_many([(3, "probe")])
        assert seen["time_budget"] is None


class TestCompareSharesSession:
    def test_compare_accepts_session(self, paper_graph, listing_spy):
        from repro.analysis.compare import compare_methods

        session = Session(paper_graph)
        rows = compare_methods(session, 3, methods=("gc", "opt"))
        assert {row.method for row in rows} == {"gc", "opt"}
        assert listing_spy == [3]  # both methods + bounds shared one listing
