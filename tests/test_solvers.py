"""Core-solver tests: HG, GC, L, LP and OPT on shared scenarios."""

import pytest

from repro import Graph, find_disjoint_cliques, is_maximal, verify_solution
from repro.core.basic import basic_framework
from repro.core.exact import exact_optimum
from repro.core.lightweight import lightweight
from repro.core.store_all import store_all_cliques
from repro.errors import InvalidParameterError, OutOfMemoryError
from repro.graph.generators import (
    complete_graph,
    planted_clique_packing,
    ring_of_cliques,
)
from tests.conftest import brute_force_max_disjoint

ALL_METHODS = ["hg", "gc", "l", "lp", "opt"]
HEURISTICS = ["hg", "gc", "l", "lp"]


class TestValidity:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("k", [3, 4])
    def test_solutions_valid_and_maximal(self, random_graphs, method, k):
        for g in random_graphs:
            result = find_disjoint_cliques(g, k, method=method)
            verify_solution(g, k, result.cliques)
            assert is_maximal(g, k, result.cliques)
            assert result.k == k and result.method == method

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_empty_graph(self, method):
        assert find_disjoint_cliques(Graph(0), 3, method=method).size == 0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_no_cliques(self, method):
        path = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert find_disjoint_cliques(path, 3, method=method).size == 0


class TestPlantedOptimum:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_clean_planting_recovered(self, method, k):
        g, planted = planted_clique_packing(6, k, seed=13)
        result = find_disjoint_cliques(g, k, method=method)
        assert result.size == len(planted)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_noisy_planting_at_least_recovers_count(self, method):
        g, planted = planted_clique_packing(
            5, 3, extra_nodes=4, noise_edges=12, seed=3
        )
        result = find_disjoint_cliques(g, 3, method=method)
        assert result.size >= len(planted) - 1  # heuristics may trade one

    def test_opt_on_ring_of_cliques(self):
        g = ring_of_cliques(5, 3)
        assert exact_optimum(g, 3).size == 5

    @pytest.mark.parametrize("method", HEURISTICS)
    def test_heuristics_on_ring_of_cliques(self, method):
        g = ring_of_cliques(6, 4)
        result = find_disjoint_cliques(g, 4, method=method)
        assert result.size == 6


class TestAgainstBruteForce:
    @pytest.mark.parametrize("k", [3, 4])
    def test_opt_is_optimal(self, random_graphs, k):
        for g in random_graphs:
            if g.n > 18:
                continue
            expected = brute_force_max_disjoint(g, k)
            assert exact_optimum(g, k).size == expected

    @pytest.mark.parametrize("method", HEURISTICS)
    @pytest.mark.parametrize("k", [3, 4])
    def test_heuristics_bounded_by_opt(self, random_graphs, method, k):
        for g in random_graphs:
            if g.n > 18:
                continue
            opt = brute_force_max_disjoint(g, k)
            got = find_disjoint_cliques(g, k, method=method).size
            assert got <= opt
            # Theorem 3: any maximal solution is a k-approximation.
            assert k * got >= opt


class TestBasicFramework:
    def test_paper_example_runs_to_maximal(self, paper_graph):
        # Example 2 uses the id ordering; any run must produce a maximal
        # disjoint triangle set of size >= 2 (the example finds 2; our
        # deterministic FindOne happens to find the maximum, 3).
        result = basic_framework(paper_graph, 3, order="id")
        verify_solution(paper_graph, 3, result.cliques)
        assert is_maximal(paper_graph, 3, result.cliques)
        assert result.size >= 2

    def test_ordering_changes_outcome_shape(self, paper_graph):
        for order in ("id", "degree", "degeneracy"):
            result = basic_framework(paper_graph, 3, order=order)
            verify_solution(paper_graph, 3, result.cliques)

    def test_stats_populated(self, paper_graph):
        result = basic_framework(paper_graph, 3)
        assert result.stats["cliques_taken"] == result.size
        assert result.stats["findone_calls"] >= result.size

    def test_k2_greedy_matching(self, paper_graph):
        result = basic_framework(paper_graph, 2)
        verify_solution(paper_graph, 2, result.cliques)
        # Greedy maximal matching is at least half the maximum (15 edges,
        # maximum matching 4).
        assert result.size >= 2

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            basic_framework(paper_graph, 1)


class TestStoreAll:
    def test_memory_cap(self, paper_graph):
        with pytest.raises(OutOfMemoryError):
            store_all_cliques(paper_graph, 3, max_cliques=3)

    def test_stats(self, paper_graph):
        result = store_all_cliques(paper_graph, 3)
        assert result.stats["cliques_stored"] == 7
        assert result.size == result.stats["cliques_taken"]

    def test_deterministic(self, random_graphs):
        for g in random_graphs:
            a = store_all_cliques(g, 3).sorted_cliques()
            b = store_all_cliques(g, 3).sorted_cliques()
            assert a == b

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            store_all_cliques(paper_graph, 0)


class TestLightweight:
    def test_prune_counters(self):
        # Needs heterogeneous node scores for the bound to fire; a
        # clustered power-law graph provides them (a complete graph,
        # where all scores tie, prunes nothing by design).
        from repro.graph.generators import powerlaw_cluster

        g = powerlaw_cluster(80, 5, 0.7, seed=1)
        pruned = lightweight(g, 4, prune=True)
        unpruned = lightweight(g, 4, prune=False)
        assert pruned.stats["branches_pruned"] > 0
        assert unpruned.stats["branches_pruned"] == 0
        assert pruned.size == unpruned.size

    def test_no_prune_on_uniform_scores(self):
        g = complete_graph(12)
        result = lightweight(g, 4, prune=True)
        assert result.stats["branches_pruned"] == 0
        assert result.size == 3

    def test_heap_accounting(self, paper_graph):
        result = lightweight(paper_graph, 3)
        assert result.stats["heap_pops"] <= result.stats["heap_pushes"]
        assert result.stats["cliques_taken"] == result.size

    def test_method_tags(self, paper_graph):
        assert lightweight(paper_graph, 3, prune=True).method == "lp"
        assert lightweight(paper_graph, 3, prune=False).method == "l"

    def test_k2(self, paper_graph):
        result = lightweight(paper_graph, 2)
        verify_solution(paper_graph, 2, result.cliques)

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            lightweight(paper_graph, 1)


class TestExactOpt:
    def test_k2_uses_blossom(self, paper_graph):
        result = exact_optimum(paper_graph, 2)
        verify_solution(paper_graph, 2, result.cliques)
        from repro.matching import matching_size

        assert result.size == matching_size(paper_graph)

    def test_oom_marker(self, paper_graph):
        with pytest.raises(OutOfMemoryError):
            exact_optimum(paper_graph, 3, max_cliques=2)

    def test_stats(self, paper_graph):
        result = exact_optimum(paper_graph, 3)
        assert result.stats["clique_graph_nodes"] == 7

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            exact_optimum(paper_graph, 1)
