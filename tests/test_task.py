"""Anytime SolveTask protocol: stepping, validity, equivalence, events.

The core acceptance contract: interrupting a resumable task at *any*
step boundary yields a valid disjoint k-clique set (Section V
invariants), and driving the same task to completion produces solutions
and stats identical to the blocking ``Session.solve`` path — across
methods, seeds and backends.
"""

import json

import pytest

from repro import Session, SolveTask
from repro.core.result import is_maximal, verify_solution
from repro.errors import InvalidParameterError
from repro.graph.generators import powerlaw_cluster, watts_strogatz

RESUMABLE = ("hg", "l", "lp", "opt-bb")


def small_graph(seed: int):
    return powerlaw_cluster(150, 5, 0.6, seed=seed)


def bb_graph(seed: int):
    # Branch-and-bound territory: small-world graphs stay tractable at
    # this size, while clique-rich powerlaw graphs explode.
    return watts_strogatz(36, 6, 0.2, seed=seed)


class TestEquivalence:
    @pytest.mark.parametrize("method", RESUMABLE)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_driven_task_matches_blocking_solve(self, method, seed):
        g = bb_graph(seed) if method == "opt-bb" else small_graph(seed)
        session = Session(g)
        k = 3 if method == "opt-bb" else 4
        blocking = session.solve(k, method)
        result = session.task(k, method).run()
        assert result.sorted_cliques() == blocking.sorted_cliques()
        assert result.stats == blocking.stats
        assert result.method == blocking.method

    @pytest.mark.parametrize("backend", ["sets", "csr"])
    def test_lp_task_matches_blocking_across_backends(self, backend):
        g = powerlaw_cluster(300, 6, 0.7, seed=5)
        session = Session(g)
        blocking = session.solve(4, "lp", backend=backend)
        result = session.task(4, "lp", backend=backend).run()
        assert result.sorted_cliques() == blocking.sorted_cliques()
        assert result.stats == blocking.stats

    def test_chunked_stepping_matches_single_run(self):
        g = small_graph(7)
        session = Session(g)
        task = session.task(4, "lp")
        while not task.done:
            task.step(max_work=3)
        assert (
            task.result().sorted_cliques()
            == session.solve(4, "lp").sorted_cliques()
        )


class TestStepBoundaryValidity:
    @pytest.mark.parametrize("method", RESUMABLE)
    def test_best_is_always_valid_and_bound_dominates(self, method):
        g = watts_strogatz(40, 6, 0.2, seed=1) if method == "opt-bb" \
            else small_graph(3)
        session = Session(g)
        k = 3 if method == "opt-bb" else 4
        task = session.task(k, method)
        while not task.done:
            snapshot = task.step(max_work=5)
            best = task.best()
            verify_solution(g, k, best.cliques)
            assert snapshot.size == best.size
            assert snapshot.bound >= snapshot.size
        assert is_maximal(g, k, task.best().cliques)

    def test_greedy_final_bound_equals_size(self):
        session = Session(small_graph(2))
        task = session.task(4, "lp")
        task.run()
        assert task.bound() == task.best().size

    def test_exact_bound_certifies_optimality(self):
        g = watts_strogatz(40, 6, 0.2, seed=3)
        session = Session(g)
        task = session.task(3, "opt-bb")
        bounds = []
        while not task.done:
            snapshot = task.step(max_work=25)
            bounds.append(snapshot.bound)
        assert bounds[-1] == task.result().size
        assert all(b >= task.result().size for b in bounds)


class TestTaskLifecycle:
    def test_snapshot_fields_and_work_counter(self):
        session = Session(small_graph(1))
        task = session.task(4, "lp")
        snapshot = task.step(max_work=10)
        assert snapshot.work == 10 and task.work == 10
        assert snapshot.state in ("ready", "done")
        final = task.step()  # drive to completion
        assert final.done and final.state == "done"
        assert task.result().size == final.size

    def test_pause_resume(self):
        session = Session(small_graph(1))
        task = session.task(4, "lp")
        task.step(max_work=5)
        task.pause()
        before = task.work
        assert task.step(max_work=5).state == "paused"
        assert task.work == before  # paused step does no work
        task.resume()
        assert task.step(max_work=5).work == before + 5

    def test_result_before_done_raises(self):
        session = Session(small_graph(1))
        task = session.task(4, "lp")
        task.step(max_work=1)
        with pytest.raises(InvalidParameterError, match="not completed"):
            task.result()

    def test_progress_events_fire_on_improvement(self):
        session = Session(powerlaw_cluster(250, 6, 0.7, seed=4))
        events = []
        task = session.task(3, "lp")
        task.on_progress(events.append)
        while not task.done:
            task.step(max_work=20)
        assert events, "at least the completion event must fire"
        assert events[-1].done
        sizes = [e.size for e in events]
        assert sizes == sorted(sizes)

    def test_max_seconds_step_bound(self):
        session = Session(powerlaw_cluster(400, 6, 0.6, seed=6))
        task = session.task(4, "lp")
        snapshot = task.step(max_seconds=0.001)
        # The time bound must still make progress (at least one unit).
        assert snapshot.work > 0

    def test_bad_arguments(self):
        session = Session(small_graph(1))
        with pytest.raises(InvalidParameterError, match="not resumable"):
            session.task(3, "gc")
        with pytest.raises(InvalidParameterError, match="time_budget"):
            session.task(3, "opt-bb", time_budget=1.0)
        task = session.task(3, "lp")
        with pytest.raises(InvalidParameterError, match="max_work"):
            task.step(max_work=0)


class TestWarmStart:
    def test_warm_start_seeds_valid_cliques(self):
        g = small_graph(8)
        session = Session(g)
        prev = session.solve(4, "lp")
        task = session.task(4, "lp", warm_start=prev)
        result = task.run()
        verify_solution(g, 4, result.cliques)
        assert is_maximal(g, 4, result.cliques)
        assert result.stats["warm_seeded"] == prev.size
        assert result.size >= prev.size

    def test_warm_start_filters_stale_cliques(self):
        g = small_graph(9)
        session = Session(g)
        # Cliques that are not cliques of g (and overlapping ones) are
        # silently skipped, never crash the engine.
        junk = [frozenset({0, 1, 2, 3}), frozenset({10_000, 10_001, 10_002, 10_003})]
        result = session.task(4, "lp", warm_start=junk).run()
        verify_solution(g, 4, result.cliques)

    def test_warm_start_rejected_for_unsupported_method(self):
        from repro.core.basic import BasicEngine
        from repro.core.registry import HGOptions, SolverRegistry

        registry = SolverRegistry()

        @registry.register(
            "hg-nw",
            summary="resumable but no warm start",
            exact=False,
            options=HGOptions,
            engine=lambda prep, k, opts, warm_start=None: BasicEngine(
                prep.graph, k, order=opts.order
            ),
        )
        def _run(prep, k, opts):
            raise AssertionError("not driven in this test")

        session = Session(small_graph(1), registry=registry, default_method="hg-nw")
        with pytest.raises(InvalidParameterError, match="warm_start"):
            session.task(3, "hg-nw", warm_start=[])

    def test_exact_warm_incumbent_preserves_optimality(self):
        g = watts_strogatz(30, 6, 0.2, seed=2)
        session = Session(g)
        optimum = session.solve(3, "opt-bb")
        heuristic = session.solve(3, "lp")
        warm = session.task(3, "opt-bb", warm_start=heuristic).run()
        assert warm.size == optimum.size
        verify_solution(g, 3, warm.cliques)

    def test_dynamic_warm_restart_after_updates(self):
        g = powerlaw_cluster(200, 6, 0.7, seed=11)
        session = Session(g)
        dyn = session.dynamic(4)
        pre_update = dyn.solution()
        edges = sorted(tuple(sorted(e)) for e in g.edges())[:10]
        for u, v in edges:
            dyn.delete_edge(u, v)
        updated = dyn.graph.snapshot()
        warm_session = Session(updated)
        dyn2 = warm_session.dynamic(4, warm_start=pre_update)
        dyn2.check_invariants()
        # The warm seed survives where still valid.
        seeded = warm_session.task(4, "lp", warm_start=pre_update).run()
        assert seeded.stats.get("warm_seeded", 0) > 0


class TestTaskRepr:
    def test_repr_mentions_state(self):
        session = Session(small_graph(1))
        task = session.task(4, "lp")
        assert "lp" in repr(task) and "ready" in repr(task)
        assert isinstance(task, SolveTask)
