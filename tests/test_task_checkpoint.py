"""Checkpoint/restore: JSON round-trips, cross-process resume, guards.

The satellite acceptance case: a half-run ``exact_bb`` task is
checkpointed, shipped to a *new process* as JSON, restored there
against a freshly-built equal graph, driven to completion, and its
final solution and stats must match an uninterrupted run.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import Session
from repro.errors import InvalidParameterError
from repro.graph.generators import powerlaw_cluster, watts_strogatz

SRC = str(Path(__file__).resolve().parent.parent / "src")


def roundtrip(checkpoint: dict) -> dict:
    """Force the checkpoint through its JSON wire form."""
    return json.loads(json.dumps(checkpoint))


class TestInProcessRoundTrip:
    @pytest.mark.parametrize("method,k", [("hg", 4), ("l", 4), ("lp", 4)])
    def test_greedy_halfway_restore_matches_uninterrupted(self, method, k):
        make = lambda: powerlaw_cluster(200, 6, 0.7, seed=4)  # noqa: E731
        session = Session(make())
        reference = session.solve(k, method)

        task = session.task(k, method)
        task.step(max_work=120)
        blob = roundtrip(task.checkpoint())

        fresh = Session(make())
        restored = fresh.restore_task(blob)
        assert restored.work == task.work
        result = restored.run()
        assert result.sorted_cliques() == reference.sorted_cliques()
        assert result.stats == reference.stats

    def test_exact_bb_halfway_restore_matches_uninterrupted(self):
        make = lambda: watts_strogatz(40, 6, 0.2, seed=1)  # noqa: E731
        session = Session(make())
        reference = session.solve(3, "opt-bb")

        task = session.task(3, "opt-bb")
        task.step(max_work=77)
        blob = roundtrip(task.checkpoint())

        restored = Session(make()).restore_task(blob)
        result = restored.run()
        assert result.sorted_cliques() == reference.sorted_cliques()
        assert result.stats == reference.stats

    def test_checkpoint_of_finished_task_restores_done(self):
        session = Session(powerlaw_cluster(80, 5, 0.6, seed=2))
        task = session.task(3, "lp")
        final = task.run()
        restored = session.restore_task(roundtrip(task.checkpoint()))
        assert restored.done
        assert restored.result().sorted_cliques() == final.sorted_cliques()

    def test_checkpoint_preserves_options(self):
        session = Session(powerlaw_cluster(120, 5, 0.6, seed=3))
        task = session.task(3, "lp", backend="csr")
        task.step(max_work=10)
        blob = roundtrip(task.checkpoint())
        assert blob["options"]["backend"] == "csr"
        restored = session.restore_task(blob)
        assert restored.options.backend == "csr"


class TestParallelPortability:
    def test_parallel_checkpoint_restores_on_spawn_only_platform(
        self, monkeypatch
    ):
        """An 'init-parallel' checkpoint restored on a spawn-only
        platform must still fan out — under spawn, with identical
        results. (The pre-shared-memory tier silently fell back to
        sequential HeapInit here; the fallback no longer exists.)"""
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        make = lambda: powerlaw_cluster(120, 5, 0.6, seed=6)  # noqa: E731
        session = Session(make())
        reference = session.solve(3, "lp", workers=4)
        blob = roundtrip(session.task(3, "lp", workers=4).checkpoint())
        assert blob["engine"]["phase"] == "init-parallel"

        from repro.parallel import context as ctx_mod

        # Pretend fork does not exist: "auto" must resolve to spawn and
        # the restored run must match the reference bit for bit.
        monkeypatch.setattr(
            ctx_mod.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert ctx_mod.resolve_context("auto").get_start_method() == "spawn"
        restored = Session(make()).restore_task(blob)
        result = restored.run()
        assert result.sorted_cliques() == reference.sorted_cliques()
        assert result.stats == reference.stats


class TestGuards:
    def test_fingerprint_mismatch_rejected(self):
        task = Session(powerlaw_cluster(100, 5, 0.6, seed=1)).task(3, "lp")
        task.step(max_work=5)
        blob = task.checkpoint()
        other = Session(powerlaw_cluster(100, 5, 0.6, seed=2))
        with pytest.raises(InvalidParameterError, match="fingerprint"):
            other.restore_task(blob)

    def test_bad_version_rejected(self):
        session = Session(powerlaw_cluster(100, 5, 0.6, seed=1))
        blob = session.task(3, "lp").checkpoint()
        blob["version"] = 99
        with pytest.raises(InvalidParameterError, match="version"):
            session.restore_task(blob)

    def test_non_mapping_rejected(self):
        session = Session(powerlaw_cluster(100, 5, 0.6, seed=1))
        with pytest.raises(InvalidParameterError, match="mapping"):
            session.restore_task("not a checkpoint")


RESUME_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro import Session
from repro.graph.generators import watts_strogatz

payload = json.load(sys.stdin)
session = Session(watts_strogatz(40, 6, 0.2, seed=1))
task = session.restore_task(payload["checkpoint"])
result = task.run()
json.dump({{
    "cliques": [list(c) for c in result.sorted_cliques()],
    "stats": result.stats,
    "work": task.work,
}}, sys.stdout)
"""


class TestCrossProcess:
    def test_exact_bb_checkpoint_resumes_in_subprocess(self):
        """Satellite: half-run opt-bb -> checkpoint -> new process -> equal."""
        make = lambda: watts_strogatz(40, 6, 0.2, seed=1)  # noqa: E731
        session = Session(make())
        reference = session.solve(3, "opt-bb")

        task = session.task(3, "opt-bb")
        # Step until genuinely mid-search (some branches expanded, not done).
        task.step(max_work=101)
        assert not task.done
        blob = task.checkpoint()

        proc = subprocess.run(
            [sys.executable, "-c", RESUME_SCRIPT.format(src=SRC)],
            input=json.dumps({"checkpoint": blob}),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout)
        assert remote["cliques"] == [
            list(c) for c in reference.sorted_cliques()
        ]
        assert remote["stats"] == reference.stats
        assert remote["work"] > task.work
