"""Theorem 4: Algorithm 2 (GC) and Algorithm 3 (L, LP) coincide exactly.

The paper proves that under a fixed total node ordering and a fixed
total clique ordering, the stored-clique method and the lightweight
method produce the same S. This package pins both orderings to the
deterministic key ``(clique_score, sorted node tuple)``, so the theorem
is testable as exact set equality — including for LP, whose pruning
condition can never discard a key-minimal clique (every pruned branch
completes to a strictly larger score).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lightweight import lightweight
from repro.core.store_all import store_all_cliques
from repro.graph.generators import (
    erdos_renyi_gnp,
    planted_clique_packing,
    powerlaw_cluster,
    watts_strogatz,
)


def assert_same_solution(graph, k):
    gc = store_all_cliques(graph, k).sorted_cliques()
    l_plain = lightweight(graph, k, prune=False).sorted_cliques()
    lp = lightweight(graph, k, prune=True).sorted_cliques()
    assert gc == l_plain, f"GC != L for k={k}"
    assert gc == lp, f"GC != LP for k={k}"


class TestFixedGraphs:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_paper_example(self, paper_graph, k):
        assert_same_solution(paper_graph, k)

    @pytest.mark.parametrize("k", [3, 4])
    def test_random_small(self, random_graphs, k):
        for g in random_graphs:
            assert_same_solution(g, k)

    @pytest.mark.parametrize("seed", range(5))
    def test_watts_strogatz(self, seed):
        g = watts_strogatz(60, 6, 0.3, seed=seed)
        assert_same_solution(g, 3)

    @pytest.mark.parametrize("seed", range(5))
    def test_powerlaw_cluster(self, seed):
        g = powerlaw_cluster(80, 4, 0.6, seed=seed)
        for k in (3, 4):
            assert_same_solution(g, k)

    def test_planted(self):
        g, _ = planted_clique_packing(6, 4, extra_nodes=5, noise_edges=20, seed=9)
        assert_same_solution(g, 4)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=22),
        p=st.floats(min_value=0.15, max_value=0.6),
        k=st.integers(min_value=3, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_gc_equals_lightweight(self, n, p, k, seed):
        g = erdos_renyi_gnp(n, p, seed=seed)
        assert_same_solution(g, k)
