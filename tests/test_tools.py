"""The CI gate scripts under tools/ must hold on the repo itself."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TOOLS = ROOT / "tools"


def run_tool(name, *args):
    proc = subprocess.run(
        [sys.executable, str(TOOLS / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=ROOT,
    )
    return proc


class TestDocstringGate:
    def test_public_surface_fully_documented(self):
        proc = run_tool("check_docstrings.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "100.0%" in proc.stdout

    def test_gate_actually_detects_missing_docstrings(self, tmp_path):
        # Guard the guard: strip one docstring in a sandboxed copy of the
        # tree and the gate must fail naming the symbol.
        import shutil

        sandbox = tmp_path / "repo"
        shutil.copytree(ROOT / "src", sandbox / "src")
        shutil.copytree(TOOLS, sandbox / "tools")
        pool_py = sandbox / "src" / "repro" / "serve" / "pool.py"
        text = pool_py.read_text(encoding="utf-8")
        needle = '''    def clear(self) -> int:
        """Drop every resident session; returns how many were evicted."""'''
        assert needle in text
        pool_py.write_text(
            text.replace(needle, "    def clear(self) -> int:"), encoding="utf-8"
        )
        proc = subprocess.run(
            [sys.executable, str(sandbox / "tools" / "check_docstrings.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 1
        assert "repro.serve.pool.SessionPool.clear" in proc.stderr


class TestLinkGate:
    def test_repo_docs_links_resolve(self):
        proc = run_tool("check_doc_links.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_gate_detects_broken_links(self, tmp_path):
        import shutil

        sandbox = tmp_path / "repo"
        (sandbox / "docs").mkdir(parents=True)
        shutil.copytree(TOOLS, sandbox / "tools")
        (sandbox / "README.md").write_text("[ok](docs/real.md)\n")
        (sandbox / "docs" / "real.md").write_text(
            "[broken](../src/missing_module.py)\n"
            "[fine](real.md#anchor)\n"
            "[external](https://example.com/x)\n"
        )
        proc = subprocess.run(
            [sys.executable, str(sandbox / "tools" / "check_doc_links.py")],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 1
        assert "missing_module.py" in proc.stderr
        assert "real.md#anchor" not in proc.stderr
