"""Property tests for the batched-update planner (UpdateBatch) and
the stream chunker (iter_batches)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamic import DynamicDisjointCliques, UpdateBatch, iter_batches
from repro.errors import GraphError, InvalidParameterError
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import erdos_renyi_gnm

N = 10

node = st.integers(0, N - 1)
update = st.tuples(
    st.sampled_from(["insert", "delete"]), node, node
).filter(lambda t: t[1] != t[2])
streams = st.lists(update, max_size=30)
graphs = st.builds(
    erdos_renyi_gnm,
    n=st.just(N),
    m=st.integers(0, 20),
    seed=st.integers(0, 500),
)


def replay(graph: DynamicGraph, updates) -> set[tuple[int, int]]:
    """Sequential edge-set semantics of a stream (the ground truth)."""
    edges = set(graph.edges())
    for op, u, v in updates:
        e = (min(u, v), max(u, v))
        if op == "insert":
            edges.add(e)
        else:
            edges.discard(e)
    return edges


class TestCoalescing:
    def test_insert_then_delete_is_noop(self):
        g = DynamicGraph(4, [(0, 1)])
        batch = UpdateBatch.plan([("insert", 2, 3), ("delete", 2, 3)], g)
        assert batch.is_noop
        assert batch.nops == 2 and batch.effective == 0
        assert len(batch) == 2

    def test_delete_then_insert_of_present_edge_is_noop(self):
        g = DynamicGraph(4, [(0, 1)])
        batch = UpdateBatch.plan([("delete", 0, 1), ("insert", 0, 1)], g)
        assert batch.is_noop and batch.nops == 2

    def test_last_op_wins(self):
        g = DynamicGraph(4)
        batch = UpdateBatch.plan(
            [("insert", 0, 1), ("delete", 0, 1), ("insert", 0, 1)], g
        )
        assert batch.inserts == ((0, 1),) and not batch.deletes
        assert batch.nops == 2

    def test_duplicates_collapse(self):
        g = DynamicGraph(4)
        batch = UpdateBatch.plan([("insert", 1, 0)] * 5, g)
        assert batch.inserts == ((0, 1),)
        assert batch.nops == 4

    def test_matching_state_is_nop(self):
        g = DynamicGraph(4, [(0, 1)])
        batch = UpdateBatch.plan([("insert", 0, 1), ("delete", 2, 3)], g)
        assert batch.is_noop and batch.nops == 2

    def test_endpoints_normalised_to_plain_ints(self):
        import numpy as np

        g = DynamicGraph(4)
        batch = UpdateBatch.plan([("insert", np.int64(3), np.int64(1))], g)
        (edge,) = batch.inserts
        assert edge == (1, 3)
        assert all(type(x) is int for x in edge)

    @settings(max_examples=60, deadline=None)
    @given(g=graphs, updates=streams)
    def test_plan_matches_sequential_replay(self, g, updates):
        dyn = DynamicGraph.from_graph(g)
        batch = UpdateBatch.plan(updates, dyn)
        dyn.delete_edges(batch.deletes)
        dyn.insert_edges(batch.inserts)
        assert set(dyn.edges()) == replay(DynamicGraph.from_graph(g), updates)
        assert batch.effective + batch.nops == len(updates)

    @settings(max_examples=40, deadline=None)
    @given(
        g=graphs,
        updates=st.lists(update, max_size=12, unique_by=lambda t: (min(t[1], t[2]), max(t[1], t[2]))),
        seed=st.integers(0, 1000),
    )
    def test_commuting_updates_permute_to_identical_plans(self, g, updates, seed):
        """Ops on distinct edges commute: any order plans identically."""
        import random

        dyn = DynamicGraph.from_graph(g)
        base = UpdateBatch.plan(updates, dyn)
        shuffled = updates[:]
        random.Random(seed).shuffle(shuffled)
        other = UpdateBatch.plan(shuffled, dyn)
        assert set(base.inserts) == set(other.inserts)
        assert set(base.deletes) == set(other.deletes)
        assert base.nops == other.nops

    @settings(max_examples=25, deadline=None)
    @given(updates=st.lists(update, max_size=10), seed=st.integers(0, 1000))
    def test_permuted_commuting_batches_yield_identical_graphs(self, updates, seed):
        """Applying a permutation of a distinct-edge batch through the
        maintainer lands on the same graph (and a valid state)."""
        import random

        seen = set()
        distinct = []
        for op, u, v in updates:
            e = (min(u, v), max(u, v))
            if e not in seen:
                seen.add(e)
                distinct.append((op, u, v))
        g = erdos_renyi_gnm(N, 12, seed=3)
        a = DynamicDisjointCliques(g, 3)
        a.apply_batch(distinct)
        shuffled = distinct[:]
        random.Random(seed).shuffle(shuffled)
        b = DynamicDisjointCliques(g, 3)
        b.apply_batch(shuffled)
        assert set(a.graph.edges()) == set(b.graph.edges())
        a.check_invariants()
        b.check_invariants()


class TestValidation:
    def test_unknown_op_rejected(self):
        g = DynamicGraph(4)
        with pytest.raises(InvalidParameterError):
            UpdateBatch.plan([("frobnicate", 0, 1)], g)

    def test_self_loop_rejected(self):
        g = DynamicGraph(4)
        with pytest.raises(GraphError):
            UpdateBatch.plan([("insert", 2, 2)], g)

    def test_out_of_range_rejected(self):
        g = DynamicGraph(4)
        with pytest.raises(GraphError):
            UpdateBatch.plan([("insert", 0, 9)], g)

    def test_validation_is_transactional(self):
        """A bad op anywhere in the stream leaves the maintainer untouched."""
        g = erdos_renyi_gnm(8, 10, seed=1)
        dyn = DynamicDisjointCliques(g, 3)
        edges_before = set(dyn.graph.edges())
        size_before = dyn.size
        with pytest.raises(InvalidParameterError):
            dyn.apply_batch([("insert", 0, 1), ("bogus", 1, 2)])
        assert set(dyn.graph.edges()) == edges_before
        assert dyn.size == size_before
        dyn.check_invariants()


class TestIterBatches:
    def test_chunking(self):
        updates = [("insert", 0, i) for i in range(1, 8)]
        chunks = list(iter_batches(updates, 3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [u for c in chunks for u in c] == updates

    def test_empty_stream(self):
        assert list(iter_batches([], 4)) == []

    def test_bad_batch_size(self):
        with pytest.raises(InvalidParameterError):
            list(iter_batches([("insert", 0, 1)], 0))

    def test_apply_with_batch_size_equals_plain_apply_graphwise(self):
        g = erdos_renyi_gnm(12, 30, seed=2)
        from repro.dynamic.workload import mixed_workload

        start, updates = mixed_workload(g, 8, seed=5)
        a = DynamicDisjointCliques(start, 3)
        a.apply(updates)
        b = DynamicDisjointCliques(start, 3)
        b.apply(updates, batch_size=3)
        assert set(a.graph.edges()) == set(b.graph.edges())
        b.check_invariants()


class TestEmptyAndStabilise:
    def test_empty_batch_is_cheap_noop(self):
        g = erdos_renyi_gnm(10, 15, seed=0)
        dyn = DynamicDisjointCliques(g, 3)
        batch = dyn.apply_batch([])
        assert batch.is_noop and len(batch) == 0
        dyn.check_invariants()

    def test_empty_batch_harvests_latent_swaps(self, fig5_g1):
        # G2 = G1 + (v5, v7) solved by HG can start swap-unstable; an
        # empty batch acts as an explicit stabilisation point.
        g2 = fig5_g1.add_edges([(4, 6)])
        dyn = DynamicDisjointCliques(g2, 3, method="hg")
        before = dyn.size
        dyn.apply_batch([])
        dyn.check_invariants()
        assert dyn.size >= before
