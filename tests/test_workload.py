"""Tests for the update-workload generators."""

import numpy as np
import pytest

from repro.dynamic.workload import (
    deletion_workload,
    insertion_workload,
    mixed_workload,
)
from repro.errors import InvalidParameterError
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.graph import Graph


@pytest.fixture
def base_graph():
    return erdos_renyi_gnm(50, 200, seed=1)


class TestDeletionInsertion:
    def test_deletion_samples_existing_edges(self, base_graph):
        updates = deletion_workload(base_graph, 30, seed=2)
        assert len(updates) == 30
        assert all(op == "delete" for op, _, _ in updates)
        assert all(base_graph.has_edge(u, v) for _, u, v in updates)
        # No duplicate edges sampled.
        assert len({(u, v) for _, u, v in updates}) == 30

    def test_insertion_mirrors_sample(self, base_graph):
        dels = deletion_workload(base_graph, 20, seed=3)
        ins = insertion_workload(base_graph, 20, seed=3)
        assert [(u, v) for _, u, v in dels] == [(u, v) for _, u, v in ins]
        assert all(op == "insert" for op, _, _ in ins)

    def test_deterministic(self, base_graph):
        assert deletion_workload(base_graph, 10, seed=4) == deletion_workload(
            base_graph, 10, seed=4
        )

    def test_oversample_rejected(self, base_graph):
        with pytest.raises(InvalidParameterError):
            deletion_workload(base_graph, 10_000, seed=1)

    def test_endpoints_are_plain_ints(self):
        """Regression: graphs built from numpy data must not leak
        np.int64 endpoints into the update stream (callers compare and
        serialise updates as exact plain-int tuples)."""
        edges = [
            (np.int64(u), np.int64(v))
            for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]
        ]
        graph = Graph(5, edges)
        for workload in (
            deletion_workload(graph, 4, seed=1),
            insertion_workload(graph, 4, seed=1),
        ):
            for _, u, v in workload:
                assert type(u) is int and type(v) is int
        start, updates = mixed_workload(graph, 2, seed=1)
        for _, u, v in updates:
            assert type(u) is int and type(v) is int


class TestMixed:
    def test_mixed_structure(self, base_graph):
        start, updates = mixed_workload(base_graph, 25, seed=5)
        assert len(updates) == 50
        inserts = [(u, v) for op, u, v in updates if op == "insert"]
        deletes = [(u, v) for op, u, v in updates if op == "delete"]
        assert len(inserts) == len(deletes) == 25
        # Inserted edges were pre-removed from the start graph.
        assert all(not start.has_edge(u, v) for u, v in inserts)
        # Deleted edges still exist in the start graph.
        assert all(start.has_edge(u, v) for u, v in deletes)
        assert start.m == base_graph.m - 25

    def test_insert_delete_sets_disjoint(self, base_graph):
        _, updates = mixed_workload(base_graph, 25, seed=6)
        inserts = {(u, v) for op, u, v in updates if op == "insert"}
        deletes = {(u, v) for op, u, v in updates if op == "delete"}
        assert not inserts & deletes

    def test_applying_mixed_workload_is_consistent(self, base_graph):
        from repro.graph.dynamic import DynamicGraph

        start, updates = mixed_workload(base_graph, 25, seed=7)
        dyn = DynamicGraph.from_graph(start)
        for op, u, v in updates:
            applied = dyn.insert_edge(u, v) if op == "insert" else dyn.delete_edge(u, v)
            assert applied  # every update is effective exactly once
        assert dyn.m == base_graph.m - 25
