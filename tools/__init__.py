"""Repository tooling: CI gates and the ``repro_lint`` static-analysis suite.

This package exists so the unified runner is invocable as
``python -m tools.repro_lint`` from the repository root. The legacy
standalone gates (``tools/check_docstrings.py``,
``tools/check_doc_links.py``) keep working as plain scripts and are also
folded into the unified runner.
"""
