#!/usr/bin/env python
"""CI gate: every relative link in the docs tree must resolve.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and inline
reference targets, and fails when a relative path points at a file
that does not exist — the docs tree maps paper algorithms to concrete
modules, so a dangling link means the map rotted.

Checked:  ``[text](relative/path)`` including ``path#anchor`` forms
          (the path part must exist; anchors are not validated).
Skipped:  absolute URLs (``http(s)://``, ``mailto:``) and pure
          in-page anchors (``#section``).

Run:  python tools/check_doc_links.py
Exit: 0 when all links resolve, 1 otherwise (broken links on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) — target captured lazily so
#: titles ("path \"title\"") and anchors stay attached for splitting.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_doc_files():
    """The Markdown files under the link-check contract."""
    yield ROOT / "README.md"
    docs = ROOT / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_file(path: Path) -> list[str]:
    """Return 'file: target' entries for every broken link in ``path``."""
    broken = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(ROOT)}: {target}")
    return broken


def main() -> int:
    """Check every doc file; print a summary; fail on broken links."""
    files = list(iter_doc_files())
    broken = [entry for path in files if path.exists() for entry in check_file(path)]
    checked = sum(1 for path in files if path.exists())
    print(f"link check: {checked} files scanned")
    if broken:
        print("broken relative links:", file=sys.stderr)
        for entry in broken:
            print(f"  - {entry}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
