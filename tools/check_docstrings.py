#!/usr/bin/env python
"""CI gate: public-surface docstring coverage must not regress.

Walks the declared public API surface — the modules users are pointed
at by the README and docs tree — and requires a docstring on every
public symbol: the module itself, public classes and functions defined
in it, and public methods/properties defined on those classes
(inherited and underscore-prefixed members are exempt).

The baseline is 100%: the whole surface is documented today, so *any*
missing docstring is a regression and fails the build with the exact
symbol list. Extending the surface (new public module, class or
method) therefore forces the docstring to land in the same PR.

Run:  PYTHONPATH=src python tools/check_docstrings.py [--verbose]
Exit: 0 when fully documented, 1 otherwise (missing symbols on stderr).

No dependencies beyond the package itself and the stdlib.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: The public API surface. Keep in sync with docs/architecture.md.
PUBLIC_MODULES = (
    "repro",
    "repro.errors",
    "repro.concurrency",
    "repro.core.api",
    "repro.core.session",
    "repro.core.registry",
    "repro.core.result",
    "repro.core.task",
    "repro.graph.graph",
    "repro.graph.dynamic",
    "repro.graph.fingerprint",
    "repro.dynamic.maintainer",
    "repro.dynamic.batch",
    "repro.dynamic.workload",
    "repro.analysis.bounds",
    "repro.parallel",
    "repro.parallel.shared_csr",
    "repro.parallel.context",
    "repro.parallel.heapinit",
    "repro.parallel.bb",
    "repro.parallel.worker",
    "repro.parallel.pool",
    "repro.serve",
    "repro.serve.pool",
    "repro.serve.scheduler",
    "repro.serve.feeds",
    "repro.serve.protocol",
    "repro.serve.server",
    "repro.serve.client",
    "repro.bench.runner",
    "repro.bench.workloads",
)


def is_public(name: str) -> bool:
    """Public names: no leading underscore (dunders are not API here)."""
    return not name.startswith("_")


def class_members(cls: type, qualname: str):
    """Yield (qualname, needs_doc) for public members defined on ``cls``."""
    for name, member in vars(cls).items():
        if not is_public(name):
            continue
        target = None
        if isinstance(member, property):
            target = member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            target = member.__func__
        elif inspect.isfunction(member):
            target = member
        if target is not None:
            yield f"{qualname}.{name}", bool(inspect.getdoc(target))


def audit_module(module_name: str):
    """Yield (symbol, documented) pairs for one module's public surface."""
    module = importlib.import_module(module_name)
    yield module_name, bool(inspect.getdoc(module))
    for name, obj in vars(module).items():
        if not is_public(name):
            continue
        if inspect.isclass(obj) and obj.__module__ == module_name:
            qualname = f"{module_name}.{name}"
            yield qualname, bool(inspect.getdoc(obj))
            yield from class_members(obj, qualname)
        elif inspect.isfunction(obj) and obj.__module__ == module_name:
            yield f"{module_name}.{name}", bool(inspect.getdoc(obj))


def main(argv=None) -> int:
    """Audit the surface; report coverage; fail on any undocumented symbol."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verbose", action="store_true", help="list every audited symbol"
    )
    args = parser.parse_args(argv)

    total, missing = 0, []
    for module_name in PUBLIC_MODULES:
        for symbol, documented in audit_module(module_name):
            total += 1
            if args.verbose:
                print(f"{'ok  ' if documented else 'MISS'} {symbol}")
            if not documented:
                missing.append(symbol)

    covered = total - len(missing)
    print(f"docstring coverage: {covered}/{total} public symbols "
          f"({100 * covered / total:.1f}%)")
    if missing:
        print(
            "regression: these public symbols lack docstrings:", file=sys.stderr
        )
        for symbol in missing:
            print(f"  - {symbol}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
