"""Canonical digests for the hash-randomization double-run check.

CI runs this tool twice under two distinct ``PYTHONHASHSEED`` values
(see the ``static-analysis`` job) and diffs the output: any divergence
means some solution, stat or checkpoint payload inherited hash-table
iteration order — exactly the property the ``iterorder``/``rngflow``/
``envdep`` static rules claim to rule out. The digests deliberately
exclude wall-clock values, so the comparison is noise-free.

Two modes::

    python tools/determinism_digest.py solve
        Pinned in-process workload: seeded generator graphs, a full
        ``lp`` solve, a full ``opt-bb`` exact solve, and a stepped
        ``lp`` task checkpointed mid-run. Emits one ``<label> <sha256>``
        line per component plus a ``combined`` line.

    python tools/determinism_digest.py run <results/run-dir>
        Digest of a bench run directory's order-bearing content: per
        record the suite/cell/status and gate entries (never timings)
        from ``metrics.jsonl``, plus the recorded seed manifest.

Exit status is always 0 on success; the *comparison* happens in CI by
diffing the two outputs (uploaded as artifacts on mismatch).
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def _digest(payload: object) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def solve_digests() -> dict[str, str]:
    """Digests of a pinned lp + opt-bb workload with a mid-run checkpoint."""
    from repro import Session
    from repro.graph.generators import erdos_renyi_gnm, powerlaw_cluster
    from repro.jsonsafe import json_safe

    out: dict[str, str] = {}

    # Full lp solve on a mid-sized seeded power-law graph.
    graph = powerlaw_cluster(160, 5, 0.5, seed=7)
    session = Session(graph)
    lp = session.solve(3, "lp")
    out["lp_solution"] = _digest(lp.sorted_cliques())
    out["lp_stats"] = _digest(json_safe(dict(lp.stats)))

    # Exact branch-and-bound on a small seeded G(n, m) instance.
    small = erdos_renyi_gnm(40, 140, seed=11)
    bb = Session(small).solve(3, "opt-bb")
    out["opt_bb_solution"] = _digest(bb.sorted_cliques())
    out["opt_bb_stats"] = _digest(json_safe(dict(bb.stats)))

    # Mid-run checkpoint: the restore payload must be byte-identical
    # across hash seeds for cross-process task migration to be sound.
    task = session.task(3, "lp")
    task.step(max_work=5)
    checkpoint = json.dumps(
        json_safe(task.checkpoint()), sort_keys=True, separators=(",", ":")
    )
    out["lp_checkpoint"] = hashlib.sha256(
        checkpoint.encode("utf-8")
    ).hexdigest()

    out["combined"] = _digest(sorted(out.items()))
    return out


def run_digests(run_dir: Path) -> dict[str, str]:
    """Digest of a bench run directory's order-bearing records."""
    metrics_path = run_dir / "metrics.jsonl"
    if not metrics_path.exists():
        raise SystemExit(f"no metrics.jsonl under {run_dir}")
    records = []
    for line in metrics_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        gate = {}
        for name, entry in (record.get("gate") or {}).items():
            # "ratio" gates are wall-clock speedups — noise across runs.
            # Keep name+kind (coverage is order-bearing) but drop the
            # measured value; "check"/"quality" values are pinned.
            if entry.get("kind") == "ratio":
                entry = {"kind": "ratio"}
            gate[name] = entry
        records.append(
            {
                "suite": record.get("suite"),
                "cell": record.get("cell"),
                "status": record.get("status"),
                "gate": gate,
            }
        )
    out = {"records": _digest(records)}
    manifest_path = run_dir / "manifest.json"
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        out["seeds"] = _digest(manifest.get("seeds"))
    out["combined"] = _digest(sorted(out.items()))
    return out


def main(argv: list[str]) -> int:
    if len(argv) >= 1 and argv[0] == "solve":
        digests = solve_digests()
    elif len(argv) >= 2 and argv[0] == "run":
        digests = run_digests(Path(argv[1]))
    else:
        print(__doc__, file=sys.stderr)
        return 2
    for label, value in sorted(digests.items()):
        print(f"{label} {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
