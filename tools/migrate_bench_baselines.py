"""One-shot migration of the legacy root ``BENCH_*.json`` baselines.

The five standalone benchmark scripts (backend, dynamic, parallel,
serve, anytime) used to drop a single headline JSON at the repo root.
The ``repro bench`` runner replaced that with per-run directories under
``results/``: a manifest, a ``metrics.jsonl`` stream, and a gated
summary. This script rehosts the legacy files as one synthetic
full-mode run — ``results/baseline-legacy/`` — so the regression gate
has a baseline from day one, and replaces each root file with a
relative symlink into the migrated run to keep old paths working.

The synthesized gate records use the same suite / cell / metric names
the scripts' ``cells()`` specs emit today, so both the same-mode and
cross-mode gates line up against fresh runs.

Usage::

    PYTHONPATH=src python tools/migrate_bench_baselines.py [--force]

Idempotent: re-running refreshes ``results/baseline-legacy`` in place
(with ``--force``) and leaves correct symlinks untouched.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import runner  # noqa: E402
from repro.jsonsafe import json_safe  # noqa: E402

RUN_ID = "baseline-legacy"
LEGACY_SUITES = ("anytime", "backend", "dynamic", "parallel", "serve")


def _load_legacy(name: str) -> dict[str, Any]:
    path = REPO_ROOT / f"BENCH_{name}.json"
    target = REPO_ROOT / "results" / RUN_ID / "suites" / path.name
    if path.is_symlink():
        # Already migrated: read through the link target.
        path = path.resolve()
    if not path.exists() and target.exists():
        path = target
    with path.open(encoding="utf-8") as fh:
        return json.load(fh)


def _record(suite: str, cell: str, seconds: float, metrics: dict[str, Any],
            gate: dict[str, Any]) -> dict[str, Any]:
    return {
        "schema": runner.SCHEMA_VERSION,
        "suite": suite,
        "cell": cell,
        "status": "ok",
        "seconds": round(float(seconds), 6),
        "metrics": json_safe(metrics),
        "gate": json_safe(gate),
    }


def synthesize_records(legacy: dict[str, dict[str, Any]]) -> list[dict[str, Any]]:
    """Map each legacy headline onto the runner's gate record shape."""
    records: list[dict[str, Any]] = []

    backend = legacy["backend"]
    for k, speedup in backend["headline"]["count_speedup_by_k"].items():
        records.append(_record(
            "backend", f"k{k}", 0.0,
            {"count_speedup_cold": float(speedup)},
            {"count_speedup_cold": runner.ratio(speedup),
             "backends_agree": runner.check(True)},
        ))

    dynamic = legacy["dynamic"]
    mixed_best = dynamic["headline"]["mixed_speedup_max"]
    for workload in ("deletion", "insertion", "mixed"):
        gate: dict[str, Any] = {"modes_converge": runner.check(True)}
        metrics: dict[str, Any] = {}
        if workload == "mixed":
            gate["mixed_speedup"] = runner.ratio(mixed_best)
            metrics["mixed_speedup_max"] = float(mixed_best)
        records.append(_record("dynamic", workload, 0.0, metrics, gate))

    parallel = legacy["parallel"]
    records.append(_record(
        "parallel", "heapinit", 0.0,
        {"speedup_x": parallel["headline"]["heapinit_speedup_x"]},
        {"heapinit_speedup": runner.ratio(parallel["headline"]["heapinit_speedup_x"]),
         "solutions_pinned": runner.check(True)},
    ))
    records.append(_record(
        "parallel", "exact_bb", 0.0,
        {"speedup_x": parallel["headline"]["exact_bb_speedup_x"]},
        {"exact_bb_speedup": runner.ratio(parallel["headline"]["exact_bb_speedup_x"]),
         "solutions_pinned": runner.check(True)},
    ))
    records.append(_record(
        "parallel", "pool_throughput", 0.0,
        {"throughput_x": parallel["headline"]["pool_throughput_x"]},
        {"pool_throughput": runner.ratio(parallel["headline"]["pool_throughput_x"]),
         "solutions_pinned": runner.check(True)},
    ))

    serve = legacy["serve"]
    records.append(_record(
        "serve", "warm_vs_cold", 0.0,
        {"warm_vs_cold_x": serve["headline"]["warm_vs_cold_x"]},
        {"warm_vs_cold": runner.ratio(serve["headline"]["warm_vs_cold_x"]),
         "served_matches_direct": runner.check(True)},
    ))
    records.append(_record(
        "serve", "worker_scaling", 0.0,
        {"goodput_scaling_x": serve["headline"]["worker_scaling_x"]},
        {"worker_scaling": runner.ratio(serve["headline"]["worker_scaling_x"])},
    ))

    anytime = legacy["anytime"]
    lp_final = anytime["curves"]["lp"]["final"]["size"]
    records.append(_record(
        "anytime", "curves", 0.0,
        {"lp_final_size": lp_final},
        {"monotone_and_pinned": runner.check(True),
         "final_size_lp": runner.quality(lp_final)},
    ))
    records.append(_record(
        "anytime", "preemption", 0.0,
        {"preempt_vs_shed_x": anytime["headline"]["preempt_vs_shed_x"]},
        {"preempt_vs_shed": runner.ratio(anytime["headline"]["preempt_vs_shed_x"])},
    ))
    return records


def build_legacy_manifest(legacy: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """A manifest for the synthetic run, marked as migrated legacy data."""
    manifest = runner.build_manifest(
        RUN_ID, "full",
        [(runner.get_suite(name), []) for name in LEGACY_SUITES],
    )
    manifest["migrated_from"] = sorted(f"BENCH_{name}.json" for name in legacy)
    # The legacy headlines predate the manifest schema; record their
    # recorded python version rather than the migrating interpreter's.
    pythons = {str(d["config"].get("python")) for d in legacy.values()
               if d.get("config", {}).get("python")}
    if len(pythons) == 1:
        manifest["environment"]["python"] = pythons.pop()
    for name, payload in legacy.items():
        suite_entry = manifest["suites"].get(name)
        if suite_entry is not None:
            suite_entry["legacy_config"] = json_safe(payload.get("config", {}))
    return manifest


def migrate(force: bool = False) -> Path:
    """Build ``results/baseline-legacy`` and symlink the root files."""
    legacy = {name: _load_legacy(name) for name in LEGACY_SUITES}
    run_dir = REPO_ROOT / "results" / RUN_ID
    if run_dir.exists():
        if not force:
            raise SystemExit(
                f"{run_dir} already exists; re-run with --force to refresh"
            )
        shutil.rmtree(run_dir)
    (run_dir / "suites").mkdir(parents=True)

    records = synthesize_records(legacy)
    manifest = build_legacy_manifest(legacy)
    summary = runner.build_summary(RUN_ID, "full", records)

    with (run_dir / "manifest.json").open("w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with (run_dir / "metrics.jsonl").open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    with (run_dir / "summary.json").open("w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for name, payload in legacy.items():
        with (run_dir / "suites" / f"BENCH_{name}.json").open(
            "w", encoding="utf-8"
        ) as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")

    runner.update_index(run_dir.parent, run_dir, manifest, summary)

    # Keep the old root paths working as links into the migrated run.
    for name in LEGACY_SUITES:
        root_file = REPO_ROOT / f"BENCH_{name}.json"
        rel_target = Path("results") / RUN_ID / "suites" / f"BENCH_{name}.json"
        if root_file.is_symlink():
            if root_file.readlink() == rel_target:
                continue
            root_file.unlink()
        elif root_file.exists():
            root_file.unlink()
        root_file.symlink_to(rel_target)
    return run_dir


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--force", action="store_true",
                        help="refresh an existing results/baseline-legacy")
    args = parser.parse_args(argv)
    run_dir = migrate(force=args.force)
    print(f"migrated {len(LEGACY_SUITES)} legacy baselines -> {run_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
