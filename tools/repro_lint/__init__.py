"""repro-lint: repo-specific static analysis gating CI.

The correctness story of this repository — bit-identical solutions and
stats across backends and engines, Section V invariants after every
dynamic batch, JSON-safe cross-process checkpoints — rests on contracts
that ordinary linters cannot see. ``repro_lint`` encodes them as
AST-based (and one runtime-introspection) rules, each with a committed
pass/fail fixture corpus proving it detects its target defect class:

``layering``
    The import DAG contract ``errors -> graph -> {cliques, hypergraph,
    mis} -> core -> {matching, dynamic} -> analysis -> serve -> bench ->
    cli``. Module-level imports must point strictly down the ranking;
    deferred (function-body) imports may go upward only when allow-listed.
    Violations name the offending edge.

``locking``
    Cache-lock discipline: in any class whose ``__init__`` creates a
    ``threading.Lock``/``RLock``, every write to an ``__init__``-declared
    attribute outside ``__init__`` must happen under that lock. This is
    the race class the serving layer's barrier tests catch only
    probabilistically.

``jsonsafety``
    Checkpoint/protocol JSON-safety: expressions reaching
    ``json.dumps``-bound structures (the NDJSON protocol encoder, task
    ``checkpoint()`` dicts, engine ``state_dict()`` payloads) must not be
    numpy scalars/arrays, and ``dataclasses.asdict`` payloads must pass
    through :func:`repro.jsonsafe.json_safe`.

``registry``
    Registry metadata consistency: resumable methods declare an engine
    factory with the canonical ``(prep, k, opts, warm_start=None)``
    signature, warm-startable methods are resumable, option dataclasses
    are fully defaulted and cover every engine kwarg, budget-capable
    methods expose a ``time_budget`` option, deadline-safe methods are
    heuristics.

``statskeys``
    Stats-key discipline: stats dicts only use keys from the canonical
    set in :mod:`tools.repro_lint.rules.stats_keys`, so the
    backend-equivalence differential diffs stay meaningful.

``annotations``
    Typing completeness: every function in ``src/repro`` carries a full
    signature annotation (parameters and return), the local stand-in for
    the ``mypy --strict`` gate that CI runs with the real tool.

``python -m tools.repro_lint`` runs every rule plus the folded legacy
gates (docstring coverage, doc-link resolution) and — when installed —
``mypy --strict src/repro`` and ``ruff check``. Failures are compared
against the ratchet baseline in ``tools/repro_lint/baseline.json``:
violations not in the baseline fail the run; stale baseline entries are
reported so the file only ever shrinks (``--update-baseline`` rewrites
it). See ``docs/development.md`` for the full workflow.
"""

from tools.repro_lint.core import LintReport, Violation, run_rules

__all__ = ["LintReport", "Violation", "run_rules"]
