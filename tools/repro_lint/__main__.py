"""Unified static-analysis runner: ``python -m tools.repro_lint``.

Runs, in order:

1. the repro-lint AST/runtime rules (see :mod:`tools.repro_lint.rules`)
   diffed against the ratchet baseline (``tools/repro_lint/baseline.json``);
2. the existing documentation gates (``tools/check_docstrings.py`` and
   ``tools/check_doc_links.py``), folded in so CI has one entry point —
   their standalone invocations keep working;
3. the external analysers ``ruff`` and ``mypy --strict`` when they are
   importable in the current environment, reported as *skipped*
   otherwise (the development container does not ship them; CI does).

Exit status is non-zero when any new lint violation, failed gate or
failing external analyser is found. ``--update-baseline`` rewrites the
ratchet file from the current violations — use it only to record
known-and-tracked debt, never to silence a regression.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

from tools.repro_lint.core import (
    BASELINE_PATH,
    ROOT,
    LintReport,
    Violation,
    load_baseline,
    run_rules,
    write_baseline,
)
from tools.repro_lint.rules import ALL_RULES, FILE_RULES, PROJECT_RULES

#: External analysers gated on availability: (name, command).
EXTERNAL_TOOLS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("ruff", ("ruff", "check", "src", "tools", "tests")),
    ("mypy", ("mypy", "--strict", "src/repro")),
)


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="Repo-specific static analysis for the repro package.",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=(
            "comma-separated subset of rules to run "
            f"(available: {', '.join(ALL_RULES)}; default: all)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="list every violation, including baselined ones",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the ratchet baseline from the current violations",
    )
    parser.add_argument(
        "--no-external",
        action="store_true",
        help="skip ruff/mypy even when installed",
    )
    parser.add_argument(
        "--no-gates",
        action="store_true",
        help="skip the docstring/doc-link gates (lint rules only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help=(
            "violation output format; 'github' emits workflow-command "
            "annotations that surface inline on pull-request diffs"
        ),
    )
    parser.add_argument(
        "--export-lock-graph",
        metavar="DIR",
        default=None,
        help=(
            "write the lock-acquisition graph (lock_order.json + "
            "lock_order.dot) under DIR and exit 0/1 on acyclic/cyclic"
        ),
    )
    return parser.parse_args(argv)


def _select_rules(spec: str | None) -> tuple[dict, dict]:
    if spec is None:
        return dict(FILE_RULES), dict(PROJECT_RULES)
    wanted = {name.strip() for name in spec.split(",") if name.strip()}
    unknown = wanted - set(ALL_RULES)
    if unknown:
        raise SystemExit(
            f"unknown rule(s): {', '.join(sorted(unknown))} "
            f"(available: {', '.join(ALL_RULES)})"
        )
    return (
        {k: v for k, v in FILE_RULES.items() if k in wanted},
        {k: v for k, v in PROJECT_RULES.items() if k in wanted},
    )


def _github_annotation(violation: Violation) -> str:
    """One GitHub workflow-command line for a violation."""
    return (
        f"::error file={violation.path},line={violation.line},"
        f"title=repro-lint[{violation.rule}]::{violation.message}"
    )


def _print_report(report: LintReport, *, verbose: bool, fmt: str = "text") -> None:
    shown = report.violations if verbose else report.new
    for violation in sorted(shown, key=lambda v: (v.path, v.line)):
        if fmt == "github":
            print(_github_annotation(violation))
            continue
        marker = "" if violation in report.new else " (baselined)"
        print(f"{violation.render()}{marker}", file=sys.stderr)
    summary = ", ".join(
        f"{rule}={count}" for rule, count in sorted(report.per_rule.items())
    )
    print(
        f"repro-lint: {report.files_checked} files, "
        f"{len(report.violations)} violation(s) "
        f"[{summary or 'clean'}], {len(report.new)} new",
    )
    if report.stale_baseline:
        print(
            f"repro-lint: FAIL: {len(report.stale_baseline)} stale "
            "baseline entr(y/ies) no longer fire — run --update-baseline "
            "to ratchet down:",
            file=sys.stderr,
        )
        for entry in report.stale_baseline:
            print(f"  stale: {entry}", file=sys.stderr)
    if report.stale_suppressions:
        print(
            f"repro-lint: FAIL: {len(report.stale_suppressions)} "
            "suppression comment(s) no longer suppress anything — "
            "delete them:",
            file=sys.stderr,
        )
        for entry in report.stale_suppressions:
            print(f"  stale: {entry}", file=sys.stderr)
        if fmt == "github":
            for entry in report.stale_suppressions:
                path, _, rest = entry.partition(":")
                line, _, _ = rest.partition(":")
                print(
                    f"::error file={path},line={line},"
                    "title=repro-lint[stale-suppression]::"
                    f"{entry.split(': ', 1)[-1]}"
                )


def _run_gates() -> list[tuple[str, int]]:
    """Run the folded documentation gates in-process."""
    results: list[tuple[str, int]] = []
    from tools import check_doc_links, check_docstrings

    results.append(("docstrings", check_docstrings.main([])))
    results.append(("doc-links", check_doc_links.main()))
    return results


def _run_external() -> list[tuple[str, int | None]]:
    """Run ruff/mypy when available; ``None`` status means skipped."""
    results: list[tuple[str, int | None]] = []
    for name, command in EXTERNAL_TOOLS:
        if importlib.util.find_spec(name) is None:
            results.append((name, None))
            continue
        proc = subprocess.run(command, cwd=ROOT)
        results.append((name, proc.returncode))
    return results


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = _parse_args(argv)
    if args.export_lock_graph is not None:
        from tools.repro_lint.concurrency.lockorder import export_lock_graph

        payload = export_lock_graph(Path(args.export_lock_graph))
        cycles = payload.get("cycles", [])
        print(
            f"repro-lint: lock graph: {len(payload['locks'])} locks, "
            f"{len(payload['edges'])} edges, {len(cycles)} cycle(s) "
            f"-> {args.export_lock_graph}/lock_order.{{json,dot}}"
        )
        return 1 if cycles else 0
    file_rules, project_rules = _select_rules(args.rules)
    report = run_rules(
        file_rules, project_rules, baseline=load_baseline()
    )
    if args.update_baseline:
        write_baseline(v.fingerprint() for v in report.violations)
        print(
            f"repro-lint: baseline rewritten with "
            f"{len(report.violations)} entr(y/ies) -> {BASELINE_PATH}"
        )
        report = run_rules(
            file_rules, project_rules, baseline=load_baseline()
        )
    _print_report(report, verbose=args.verbose, fmt=args.format)
    failed = report.failed

    if not args.no_gates and args.rules is None:
        for gate, status in _run_gates():
            print(f"repro-lint: gate {gate}: {'ok' if status == 0 else 'FAIL'}")
            failed = failed or status != 0

    if not args.no_external and args.rules is None:
        for tool, status in _run_external():
            if status is None:
                print(f"repro-lint: external {tool}: skipped (not installed)")
            else:
                print(
                    f"repro-lint: external {tool}: "
                    f"{'ok' if status == 0 else 'FAIL'}"
                )
                failed = failed or status != 0

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
