"""Interprocedural concurrency-contract analysis for repro-lint.

Three project-scope rules built on one shared whole-repo model
(:mod:`tools.repro_lint.concurrency.model`):

``lockorder``
    Extracts the lock-acquisition graph — which lock labels can be held
    when a call path reaches the acquisition of another — resolved
    interprocedurally through typed calls, and fails on any cycle. The
    graph is exportable as JSON + DOT (``--export-lock-graph``) and is
    cross-checked at runtime by ``src/repro/concurrency.py`` tracked
    locks under ``REPRO_TRACK_LOCKS=1``.

``holdcalling``
    Flags blocking or re-entrant work performed while holding a lock:
    I/O, ``.result()``/``.wait()``/``.join()``, solver compute under a
    foreign lock, and user-supplied callbacks invoked under any lock.

``migration``
    Type-traces values crossing process boundaries — ``state_dict()``
    and ``checkpoint()`` payloads, multiprocessing worker callables and
    their arguments — and fails on unpicklable/non-JSON-safe captures
    (locks, graphs, sessions, bound methods, closures).

``FIXTURE_CHECKERS`` maps each rule name to a file-list entry point so
the fixture corpus tests can run a rule over a single synthetic module.
"""

from __future__ import annotations

from tools.repro_lint.concurrency.holdcalling import (
    check_holdcalling,
    check_holdcalling_files,
)
from tools.repro_lint.concurrency.lockorder import (
    check_lockorder,
    check_lockorder_files,
)
from tools.repro_lint.concurrency.migration import (
    check_migration,
    check_migration_files,
)

#: rule name -> callable(list[Path]) -> list[Violation], for fixtures.
FIXTURE_CHECKERS = {
    "lockorder": check_lockorder_files,
    "holdcalling": check_holdcalling_files,
    "migration": check_migration_files,
}

__all__ = [
    "FIXTURE_CHECKERS",
    "check_holdcalling",
    "check_holdcalling_files",
    "check_lockorder",
    "check_lockorder_files",
    "check_migration",
    "check_migration_files",
]
