"""``holdcalling``: no blocking or re-entrant work while holding a lock.

The serving layer's hand-written discipline — measure session sizes
outside the pool lock, swap callbacks out under the lock then invoke
them outside, flush feeds from a snapshot — exists because any blocking
call under a lock convoys every other thread needing that lock, and any
user-supplied callback under a lock can re-enter and deadlock. This
rule encodes the discipline:

``wait``
    ``time.sleep``, ``.result(...)``, ``.wait(...)`` and zero-argument
    ``.join(...)`` under any held lock. Waiting on the held lock itself
    (the ``Condition.wait`` idiom: the wait atomically releases it) is
    exempt.

``io``
    ``open(...)``, ``print(...)``, and ``.write/.flush/.read*/.recv/
    .send`` on stream-like receivers, under any held lock.

``compute``
    Solver-scale work (``solve``, ``solve_many``, ``dynamic``,
    ``apply_batch``, ``submit``, blocking ``estimated_bytes``) while
    holding a lock *not owned by the calling class*. A class
    serialising its own compute under its own lock (``DynamicFeed``
    flushes) is its documented contract; doing it under someone else's
    lock (pool, scheduler, server) convoys that subsystem.

``callback``
    Invoking a user-supplied callable (``Callable``-typed values, or
    callback-suggestive names like ``on_*`` / ``*callback*`` / ``cb`` /
    ``fn`` / ``hook`` / ``emit``) under any held lock.

``calls-blocking``
    Calling a function whose body (transitively) performs ``io``/
    ``wait``/``callback`` work, while holding a lock. Propagation uses
    only type-resolved targets, and skips ``*_locked`` callees — their
    bodies are analyzed with the lock held already.

Intentional waivers carry ``# repro-lint: ignore=holdcalling`` on the
flagged line (e.g. the stdio transport's line-atomic write under its
private write lock).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from tools.repro_lint.concurrency import model as _model
from tools.repro_lint.core import Violation, iter_source_files

RULE = "holdcalling"

#: Direct compute/dispatch entry points (method-name keyed).
_COMPUTE_NAMES = {
    "solve",
    "solve_many",
    "dynamic",
    "apply_batch",
    "submit",
    "solve_full",
}

#: Stream-suggestive receiver names for the io category.
_STREAM_NAMES = {
    "stdout",
    "stderr",
    "stdin",
    "fh",
    "file",
    "stream",
    "sock",
    "socket",
    "out",
    "outfile",
}

_IO_METHODS = {"write", "flush", "read", "readline", "readlines", "recv", "send"}

#: Callback-suggestive callee names.
_CALLBACK_NAMES = {"fn", "cb", "hook", "emit", "func"}


def _receiver_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_stream_receiver(expr: ast.expr, env: "_model._TypeEnv") -> bool:
    name = _receiver_name(expr)
    if name is not None and name.lstrip("_") in _STREAM_NAMES:
        return True
    ref = env.resolve_type(expr)
    return ref in ("TextIO", "BinaryIO", "IO")


def _callbackish(name: str) -> bool:
    stripped = name.lstrip("_")
    return (
        stripped in _CALLBACK_NAMES
        or "callback" in stripped
        or stripped.startswith("on_")
    )


def _is_callable_value(expr: ast.expr, env: "_model._TypeEnv") -> bool:
    return env.resolve_type(expr) == "Callable"


def compute_blocking_summaries(
    model: _model.RepoModel,
) -> dict[str, frozenset[str]]:
    """Fixpoint: which of {io, wait, callback} each function may do.

    Only *resolved* call targets propagate — the name fallback used for
    acquisition coverage would be too noisy here.
    """
    direct: dict[str, set[str]] = {key: set() for key in model.functions}
    for key, func in model.functions.items():
        env = _model._TypeEnv(model, func)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            category = _direct_category(node, env, held=("<any>",))
            if category is not None and category[0] in (
                _model.CAT_IO,
                _model.CAT_WAIT,
                _model.CAT_CALLBACK,
            ):
                direct[key].add(category[0])
    summary = {key: set(value) for key, value in direct.items()}
    changed = True
    while changed:
        changed = False
        for key, analysis in model.analyses.items():
            mine = summary[key]
            before = len(mine)
            for event in analysis.calls:
                for target in event.targets:
                    mine.update(summary.get(target, ()))
            if len(mine) != before:
                changed = True
    return {key: frozenset(value) for key, value in summary.items()}


def _direct_category(
    call: ast.Call,
    env: "_model._TypeEnv",
    held: tuple[str, ...],
) -> tuple[str, str] | None:
    """(category, description) when this call is blocking-ish, else None."""
    fn = call.func
    if isinstance(fn, ast.Name):
        if fn.id in ("open", "print"):
            return (_model.CAT_IO, f"{fn.id}(...)")
        if _callbackish(fn.id) or _is_callable_value(fn, env):
            return (_model.CAT_CALLBACK, f"{fn.id}(...)")
        return None
    if not isinstance(fn, ast.Attribute):
        return None
    method = fn.attr
    receiver = fn.value
    if method == "sleep" and isinstance(receiver, ast.Name) and receiver.id == "time":
        return (_model.CAT_WAIT, "time.sleep(...)")
    if method == "result":
        return (_model.CAT_WAIT, ".result(...) — blocks for an outcome")
    if method == "wait":
        label = _model._lock_label_of(receiver, env, env.func)
        if label is not None and label in held:
            return None  # Condition.wait on the held lock releases it.
        return (_model.CAT_WAIT, ".wait(...)")
    if method == "join" and not call.args:
        return (_model.CAT_WAIT, ".join() — blocks on a thread/process")
    if method in _IO_METHODS and _is_stream_receiver(receiver, env):
        return (_model.CAT_IO, f".{method}(...) on a stream")
    if method == "estimated_bytes":
        for kw in call.keywords:
            if (
                kw.arg == "blocking"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return None
        return ("compute", ".estimated_bytes(...) — may block on a substrate lock")
    if method in _COMPUTE_NAMES:
        return ("compute", f".{method}(...) — solver-scale compute")
    if _callbackish(method) or _is_callable_value(fn, env):
        return (_model.CAT_CALLBACK, f".{method}(...)")
    return None


def _own_labels(func: _model.FuncInfo, model: _model.RepoModel) -> frozenset[str]:
    """Lock labels owned by the function's own class (and its locals)."""
    labels = set()
    if func.cls is not None:
        labels.update(site.label for site in func.cls.lock_attrs.values())
    scope: _model.FuncInfo | None = func
    while scope is not None:
        labels.update(site.label for site in scope.local_locks.values())
        scope = scope.parent
    return frozenset(labels)


def _emit(
    func: _model.FuncInfo,
    reported: set[tuple[int, str]],
    line: int,
    category: str,
    description: str,
) -> Iterator[Violation]:
    """Yield one violation per (line, description), deduplicated."""
    if (line, description) in reported:
        return
    reported.add((line, description))
    yield Violation(
        rule=RULE,
        path=func.path,
        line=line,
        message=(
            f"{func.name} performs {category} work under a held lock: "
            f"{description} — move it outside the lock (snapshot under "
            "the lock, act after releasing; see docs/development.md)"
        ),
    )


def _violations(model: _model.RepoModel) -> Iterator[Violation]:
    blocking = compute_blocking_summaries(model)
    for key, analysis in model.analyses.items():
        func = model.functions[key]
        env = _model._TypeEnv(model, func)
        own = _own_labels(func, model)
        reported: set[tuple[int, str]] = set()

        # Direct categories on every call made with a lock held.
        seen_nodes: dict[int, ast.Call] = {}
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                seen_nodes[id(node)] = node
        for event in analysis.calls:
            if not event.held:
                continue
            call = seen_nodes.get(event.node_id)
            if call is None:
                continue
            category = _direct_category(call, env, event.held)
            if category is not None:
                cat, description = category
                own_compute = cat == "compute" and all(
                    label in own for label in event.held
                )
                if not own_compute:
                    # A class serialising its own compute under its own
                    # lock is its documented contract; everything else
                    # is flagged here and we move to the next call.
                    yield from _emit(func, reported, event.line, cat, description)
                    continue
            # Propagated blocking work through resolved calls.
            for target in event.targets:
                callee = model.functions.get(target)
                if callee is None or callee.name.endswith("_locked"):
                    continue
                cats = blocking.get(target, frozenset())
                if cats:
                    yield from _emit(
                        func,
                        reported,
                        event.line,
                        "calls-blocking",
                        f"calls {callee.name}() which performs "
                        f"{'/'.join(sorted(cats))} work",
                    )


def check_holdcalling_files(files: Sequence[Path]) -> list[Violation]:
    """Run the check over an explicit file list (fixture mode)."""
    model = _model.build_model(list(files))
    return list(_violations(model))


def check_holdcalling(root: Path | None = None) -> Iterable[Violation]:
    """Project rule: blocking-work-under-lock check over ``src/repro``."""
    return check_holdcalling_files(list(iter_source_files(root)))
