"""``lockorder``: the whole-repo lock-acquisition graph must be acyclic.

Two locks that can each be held while the other is acquired deadlock
under the right interleaving; across 11 lock sites and an
interprocedural call web that is not reviewable by hand. This rule
derives the full held->acquired edge set from
:mod:`tools.repro_lint.concurrency.model` and emits one violation per
strongly-connected component containing more than one lock, anchored at
a witness edge inside the cycle.

The same graph is exported by ``--export-lock-graph`` (JSON + DOT) for
the docs diagram and the CI artifact, and is the reference set the
runtime tracker (``REPRO_TRACK_LOCKS=1``) is validated against.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from tools.repro_lint.concurrency import model as _model
from tools.repro_lint.core import Violation, iter_source_files

RULE = "lockorder"


def _cycle_violations(model: _model.RepoModel) -> Iterator[Violation]:
    edges = _model.lock_edges(model)
    for cycle in _model.find_cycles(edges):
        members = set(cycle)
        witness = next(
            (
                edge
                for (src, dst), edge in sorted(edges.items())
                if src in members and dst in members
            ),
            None,
        )
        path = witness.path if witness is not None else "src/repro"
        line = witness.line if witness is not None else 1
        yield Violation(
            rule=RULE,
            path=path,
            line=line,
            message=(
                "lock-order cycle between "
                + " <-> ".join(sorted(members))
                + " — a consistent acquisition hierarchy is required "
                "(see docs/development.md)"
            ),
        )


def check_lockorder_files(files: Sequence[Path]) -> list[Violation]:
    """Run the cycle check over an explicit file list (fixture mode)."""
    model = _model.build_model(list(files))
    return list(_cycle_violations(model))


def check_lockorder(root: Path | None = None) -> Iterable[Violation]:
    """Project rule: cycle check over the ``src/repro`` tree."""
    return check_lockorder_files(list(iter_source_files(root)))


def export_lock_graph(out_dir: Path, root: Path | None = None) -> dict:
    """Write ``lock_order.json`` + ``lock_order.dot`` under ``out_dir``.

    Returns the JSON payload (used by the CLI summary and tests).
    """
    model = _model.model_for_root(root)
    payload = _model.graph_as_json(model)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "lock_order.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    (out_dir / "lock_order.dot").write_text(
        _model.graph_as_dot(model), encoding="utf-8"
    )
    return payload


def static_edge_set(root: Path | None = None) -> frozenset[tuple[str, str]]:
    """The static (held, acquired) pairs — the runtime watchdog's oracle."""
    model = _model.model_for_root(root)
    return frozenset(_model.lock_edges(model))
