"""``migration``: values crossing a process boundary must survive it.

Three kinds of boundary exist in this repository and each has a
serialisation contract this rule type-traces:

``state_dict()`` / ``checkpoint()`` payloads
    Documented as JSON-safe (they feed ``json.dumps`` and travel between
    server processes). Placing a lock, a substrate object (``Graph``,
    ``Session``, ``OrientedCSR``, ...), a bound method or a lambda in
    the returned payload breaks the contract — those values either do
    not serialise at all or smuggle process-local state (lock ownership,
    mmap'd arrays) into a context where it is meaningless.

``multiprocessing`` pool workers
    ``pool.map``-family callables must be module-level functions:
    lambdas, nested closures and bound methods are unpicklable under
    the ``spawn`` start method, and even under ``fork`` a bound method
    drags its whole instance (locks included) into the child.

``Process(target=..., args=...)``
    Same callable discipline for ``target``; every element of ``args``
    is additionally checked for unpicklable values — locks, substrate
    objects, lambdas, bound methods, and ``Callable``-typed parameters
    whose provenance the analyzer cannot see. A ``Callable`` argument is
    only safe when the surrounding code guarantees a ``fork`` context
    (memory inheritance instead of pickling); such sites carry an
    explicit ``# repro-lint: ignore=migration`` waiver next to the
    guard.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from tools.repro_lint.concurrency import model as _model
from tools.repro_lint.core import Violation, iter_source_files

RULE = "migration"

#: Functions whose return payload must be JSON-/pickle-safe.
_PAYLOAD_FUNCS = {"state_dict", "checkpoint"}

#: Pool dispatch methods whose first callable crosses the boundary.
_POOL_METHODS = {
    "map",
    "starmap",
    "imap",
    "imap_unordered",
    "map_async",
    "starmap_async",
    "apply",
    "apply_async",
}

#: Type refs that never survive a process boundary (process-local
#: state: substrate caches, sessions, threads, live handles).
_UNPICKLABLE_TYPES = {
    "Graph",
    "DynamicGraph",
    "OrientedGraph",
    "OrientedCSR",
    "Session",
    "SharedCSR",
    "Preprocessing",
    "SessionPool",
    "Scheduler",
    "Ticket",
    "DynamicFeed",
    "Server",
    "TextIO",
    "BinaryIO",
    "IO",
    "Condition",
    "Thread",
    "Event",
    "TrackedLock",
    "TrackedRLock",
}


def _walk_with_parent(
    root: ast.AST,
) -> Iterator[tuple[ast.AST, ast.AST | None]]:
    """Yield (node, parent) over a subtree, root first."""
    stack: list[tuple[ast.AST, ast.AST | None]] = [(root, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))


def _is_chain_position(node: ast.AST, parent: ast.AST | None) -> bool:
    """True when ``node`` is consumed by a larger access, not a value.

    ``self.engine.state_dict()`` must not flag ``self.engine``: the
    attribute is the base of a call chain, so only the chain's *result*
    lands in the payload.
    """
    if isinstance(parent, ast.Attribute) and parent.value is node:
        return True
    if isinstance(parent, ast.Call) and parent.func is node:
        return True
    return False


def _bad_value(
    node: ast.AST,
    parent: ast.AST | None,
    env: "_model._TypeEnv",
) -> str | None:
    """Describe why ``node`` cannot cross a process boundary, or None."""
    func = env.func
    if isinstance(node, ast.Lambda):
        if isinstance(parent, (ast.Dict, ast.List, ast.Tuple, ast.Set, ast.Return)):
            return "a lambda (unpicklable, not JSON-safe)"
        return None
    if not isinstance(node, ast.expr) or not isinstance(
        getattr(node, "ctx", None), ast.Load
    ):
        return None
    if _is_chain_position(node, parent):
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        label = _model._lock_label_of(node, env, func)
        if label is not None:
            return f"the lock {label} (lock state is process-local)"
    if isinstance(node, ast.Attribute):
        cls = env.class_of(env.resolve_type(node.value))
        if cls is not None:
            ref = cls.attr_types.get(node.attr)
            if isinstance(ref, str) and ref in _UNPICKLABLE_TYPES:
                return f"{ref} instance {_describe(node)} (process-local state)"
            if node.attr in cls.methods and node.attr not in cls.properties:
                return (
                    f"bound method {_describe(node)} "
                    "(drags the whole instance across the boundary)"
                )
    ref = env.resolve_type(node)
    if isinstance(ref, str) and ref in _UNPICKLABLE_TYPES:
        return f"{ref} value {_describe(node)} (process-local state)"
    return None


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<expr>"


def _payload_violations(
    func: _model.FuncInfo, model: _model.RepoModel
) -> Iterator[Violation]:
    env = _model._TypeEnv(model, func)
    for stmt in ast.walk(func.node):
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        for node, parent in _walk_with_parent(stmt.value):
            reason = _bad_value(node, parent if parent is not None else stmt, env)
            if reason is not None:
                yield Violation(
                    rule=RULE,
                    path=func.path,
                    line=getattr(node, "lineno", func.node.lineno),
                    message=(
                        f"{func.name} payload includes {reason} — "
                        "checkpoints must be JSON-safe; serialise a "
                        "fingerprint or rebuild the value on restore "
                        "(see docs/development.md)"
                    ),
                )


def _worker_problem(expr: ast.expr, env: "_model._TypeEnv") -> str | None:
    """Why ``expr`` is unsafe as a cross-process callable, or None."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name):
            target = env._import_target(expr.value.id)
            if target is not None and target[1] == "module":
                return None  # module.worker — module-level, picklable.
        return f"the bound method {_describe(expr)}"
    if not isinstance(expr, ast.Name):
        return None
    scope: _model.FuncInfo | None = env.func
    while scope is not None:
        if expr.id in scope.nested:
            return f"the nested function {expr.id} (closures are unpicklable)"
        scope = scope.parent
    if env.vars.get(expr.id) == "Callable":
        return (
            f"the Callable-typed parameter {expr.id} "
            "(provenance unknown; safe only under a fork context)"
        )
    return None


def _boundary_violation(
    func: _model.FuncInfo,
    line: int,
    boundary: str,
    reason: str,
) -> Violation:
    return Violation(
        rule=RULE,
        path=func.path,
        line=line,
        message=(
            f"{func.name} passes {reason} across a process boundary "
            f"({boundary}) — workers must be module-level functions and "
            "arguments picklable (see docs/development.md)"
        ),
    )


def _pool_and_process_violations(
    func: _model.FuncInfo, model: _model.RepoModel
) -> Iterator[Violation]:
    env = _model._TypeEnv(model, func)
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        # pool.map(worker, iterable) and friends.
        if isinstance(fn, ast.Attribute) and fn.attr in _POOL_METHODS:
            if not _poolish(fn.value, env):
                continue
            workers = list(node.args[:1])
            workers += [kw.value for kw in node.keywords if kw.arg == "func"]
            for worker in workers:
                problem = _worker_problem(worker, env)
                if problem is not None:
                    yield _boundary_violation(
                        func, node.lineno, f"pool.{fn.attr}", problem
                    )
            for extra in node.args[1:]:
                reason = _bad_value(extra, node, env)
                if reason is not None:
                    yield _boundary_violation(
                        func, node.lineno, f"pool.{fn.attr}", reason
                    )
            continue
        # Process(target=..., args=(...)).
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None
        )
        if name != "Process":
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                problem = _worker_problem(kw.value, env)
                if problem is not None:
                    yield _boundary_violation(
                        func, node.lineno, "Process target", problem
                    )
            elif kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                for element in kw.value.elts:
                    reason = _bad_value(element, kw.value, env)
                    if (
                        reason is None
                        and isinstance(element, ast.Name)
                        and env.vars.get(element.id) == "Callable"
                    ):
                        reason = _worker_problem(element, env)
                    if reason is not None:
                        yield _boundary_violation(
                            func, node.lineno, "Process args", reason
                        )


def _poolish(receiver: ast.expr, env: "_model._TypeEnv") -> bool:
    """Whether the receiver looks like a multiprocessing pool."""
    if env.resolve_type(receiver) == "Pool":
        return True
    if isinstance(receiver, ast.Name):
        return "pool" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "pool" in receiver.attr.lower()
    return False


def _violations(model: _model.RepoModel) -> Iterator[Violation]:
    seen: set[tuple[str, int, str]] = set()
    for func in model.functions.values():
        if func.parent is not None:
            continue  # nested defs are walked within their parent.
        emitted: Iterable[Violation] = ()
        if func.name in _PAYLOAD_FUNCS:
            emitted = _payload_violations(func, model)
        for violation in emitted:
            key = (violation.path, violation.line, violation.message)
            if key not in seen:
                seen.add(key)
                yield violation
        for violation in _pool_and_process_violations(func, model):
            key = (violation.path, violation.line, violation.message)
            if key not in seen:
                seen.add(key)
                yield violation


def check_migration_files(files: Sequence[Path]) -> list[Violation]:
    """Run the check over an explicit file list (fixture mode)."""
    model = _model.build_model(list(files))
    return list(_violations(model))


def check_migration(root: Path | None = None) -> Iterable[Violation]:
    """Project rule: process-boundary safety over ``src/repro``."""
    return check_migration_files(list(iter_source_files(root)))
