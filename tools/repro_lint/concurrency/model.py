"""Whole-repo lock/type model shared by the concurrency rules.

The model is a lightweight interprocedural AST analysis over the
``src/repro`` tree (or any explicit file list, for fixtures):

1. **Lock discovery** — every ``make_lock("Label")`` /
   ``make_rlock("Label")`` / raw ``threading.Lock()`` / ``RLock()`` /
   ``Condition(...)`` creation site becomes a :class:`LockSite`. Labels
   come from the factory's string literal (the same labels the runtime
   tracker records), falling back to ``Class.attr``.

2. **Type resolution** — attribute types are read off ``__init__``
   assignments and annotations; locals off parameter/return
   annotations and constructor calls; containers (``dict[str, T]``)
   propagate their value type through iteration. This leans on the
   repository's fully-annotated signatures (the ``annotations`` rule
   keeps them that way), which is what makes call resolution tractable
   without a real type checker.

3. **Held-region analysis** — each function is walked in source order
   tracking the stack of held lock labels (``with`` blocks, plus the
   ``.acquire(...)``-then-``try/finally`` idiom, treated as held to the
   end of the function). Methods named ``*_locked`` start with their
   class lock held: the suffix is this repository's caller-holds
   convention. Every call site is recorded with the held stack and its
   resolved targets; every lock acquisition likewise.

4. **Fixpoint** — ``may_acquire`` (the set of labels a function can
   transitively acquire) and ``blocking`` summaries propagate over the
   recorded call targets until stable. Lock-order edges are then
   ``held x may_acquire(callee)`` at every call site plus the direct
   acquisition edges; self-edges are skipped (re-entrant RLocks and
   same-label sibling instances are a per-site discipline, not an
   ordering).

The model intentionally over-approximates (unresolved method calls can
fall back to name matching when computing acquisitions) because the
acceptance contract is *superset*: every runtime-observed edge must be
present in the static graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from tools.repro_lint.core import ROOT, iter_source_files, load_module

#: Factory callables that create a lock (label from first str arg).
_LABELLED_FACTORIES = {"make_lock": "lock", "make_rlock": "rlock"}
#: Raw threading factories (label synthesised from the owner).
_RAW_FACTORIES = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}

#: Blocking-work categories used by the ``holdcalling`` rule.
CAT_IO = "io"
CAT_WAIT = "wait"
CAT_CALLBACK = "callback"


@dataclass(frozen=True)
class LockSite:
    """One lock creation site with its stable label."""

    label: str
    kind: str
    owner: str | None
    attr: str | None
    path: str
    line: int


@dataclass
class ClassInfo:
    """A class with its attribute types, lock attributes and methods."""

    name: str
    module: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    attr_types: dict[str, object] = field(default_factory=dict)
    lock_attrs: dict[str, LockSite] = field(default_factory=dict)
    methods: dict[str, "FuncInfo"] = field(default_factory=dict)
    properties: set[str] = field(default_factory=set)


@dataclass
class FuncInfo:
    """One function/method with the context needed to analyze it."""

    key: str
    name: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: ClassInfo | None = None
    parent: "FuncInfo | None" = None
    local_locks: dict[str, LockSite] = field(default_factory=dict)
    nested: dict[str, "FuncInfo"] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEvent:
    """A call site with the lock labels held around it."""

    held: tuple[str, ...]
    line: int
    func_key: str
    targets: tuple[str, ...]
    call_desc: str
    node_id: int


@dataclass(frozen=True)
class AcquireEvent:
    """A lock acquisition with the labels already held."""

    held: tuple[str, ...]
    label: str
    line: int
    func_key: str


@dataclass
class FuncAnalysis:
    """Per-function held-region analysis output."""

    calls: list[CallEvent] = field(default_factory=list)
    acquires: list[AcquireEvent] = field(default_factory=list)


@dataclass(frozen=True)
class LockEdge:
    """One ``held -> acquired`` edge with a witness location."""

    src: str
    dst: str
    path: str
    line: int
    via: str


@dataclass
class RepoModel:
    """The parsed repository: classes, functions, locks, analyses."""

    classes: dict[str, list[ClassInfo]] = field(default_factory=dict)
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    module_functions: dict[str, dict[str, FuncInfo]] = field(default_factory=dict)
    module_imports: dict[str, dict[str, str]] = field(default_factory=dict)
    methods_by_name: dict[str, list[FuncInfo]] = field(default_factory=dict)
    locks: list[LockSite] = field(default_factory=list)
    analyses: dict[str, FuncAnalysis] = field(default_factory=dict)
    may_acquire: dict[str, frozenset[str]] = field(default_factory=dict)
    trees: dict[str, ast.Module] = field(default_factory=dict)

    def class_named(self, name: str) -> ClassInfo | None:
        """The unique class with this name, or ``None`` if ambiguous."""
        infos = self.classes.get(name, [])
        return infos[0] if len(infos) == 1 else None

    def all_classes_named(self, name: str) -> list[ClassInfo]:
        """Every class carrying this name across the tree."""
        return self.classes.get(name, [])


def _relpath(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(ROOT))
    except ValueError:
        return str(path)


# ----------------------------------------------------------------------
# Annotation parsing
# ----------------------------------------------------------------------

_CONTAINERS_DICT = {"dict", "Dict", "OrderedDict", "defaultdict", "Mapping"}
_CONTAINERS_SEQ = {
    "list",
    "List",
    "set",
    "Set",
    "frozenset",
    "FrozenSet",
    "Sequence",
    "Iterable",
    "Iterator",
    "deque",
    "tuple",
    "Tuple",
}


def type_from_annotation(node: ast.expr | None) -> object | None:
    """A type ref from an annotation: class-name str or container tuple.

    Containers come back as ``("dict", value_ref)`` or
    ``("seq", element_ref)``; ``X | None`` and ``Optional[X]`` unwrap to
    ``X``; unparseable annotations return ``None``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return type_from_annotation(parsed)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = type_from_annotation(node.left)
        if left is not None and left != "None":
            return left
        return type_from_annotation(node.right)
    if isinstance(node, ast.Subscript):
        base = type_from_annotation(node.value)
        if base == "Optional":
            return type_from_annotation(node.slice)
        args: list[ast.expr]
        if isinstance(node.slice, ast.Tuple):
            args = list(node.slice.elts)
        else:
            args = [node.slice]
        if base in _CONTAINERS_DICT and len(args) >= 2:
            return ("dict", type_from_annotation(args[1]))
        if base in _CONTAINERS_SEQ and args:
            if base in ("tuple", "Tuple") and len(args) > 1:
                return ("seq", type_from_annotation(args[0]))
            return ("seq", type_from_annotation(args[0]))
        if base == "Callable":
            return "Callable"
        return None
    return None


def _is_callable_annotation(node: ast.expr | None) -> bool:
    return type_from_annotation(node) == "Callable"


# ----------------------------------------------------------------------
# Model construction
# ----------------------------------------------------------------------


def _lock_from_call(
    call: ast.expr,
) -> tuple[str, str | None] | None:
    """``(kind, label-or-None)`` when ``call`` creates a lock."""
    if not isinstance(call, ast.Call):
        return None
    fn = call.func
    name: str | None = None
    if isinstance(fn, ast.Name):
        name = fn.id
    elif isinstance(fn, ast.Attribute):
        name = fn.attr
    if name is None:
        return None
    if name in _LABELLED_FACTORIES:
        label = None
        if call.args and isinstance(call.args[0], ast.Constant):
            value = call.args[0].value
            if isinstance(value, str):
                label = value
        return (_LABELLED_FACTORIES[name], label)
    if name in _RAW_FACTORIES:
        if name == "Condition":
            # Condition(make_rlock("L")) carries the wrapped lock's label.
            if call.args:
                inner = _lock_from_call(call.args[0])
                if inner is not None:
                    return ("condition", inner[1])
            return ("condition", None)
        return (_RAW_FACTORIES[name], None)
    return None


def _collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> dotted target for every import in the module."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports[bound] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.split(".")
                parts = parts[: len(parts) - node.level]
                base = ".".join(parts + ([base] if base else []))
            for alias in node.names:
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _decorator_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for dec in fn.decorator_list:
        if isinstance(dec, ast.Name):
            names.add(dec.id)
        elif isinstance(dec, ast.Attribute):
            names.add(dec.attr)
    return names


def _register_function(
    model: RepoModel,
    info: FuncInfo,
) -> None:
    model.functions[info.key] = info


def _scan_class(
    model: RepoModel, cls_node: ast.ClassDef, module: str, path: str
) -> ClassInfo:
    cls = ClassInfo(name=cls_node.name, module=module, node=cls_node)
    for base in cls_node.bases:
        ref = type_from_annotation(base)
        if isinstance(ref, str):
            cls.bases.append(ref)
    for node in cls_node.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ref = type_from_annotation(node.annotation)
            if ref is not None:
                cls.attr_types.setdefault(node.target.id, ref)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            key = f"{module}:{cls_node.name}.{node.name}"
            info = FuncInfo(
                key=key,
                name=node.name,
                module=module,
                path=path,
                node=node,
                cls=cls,
            )
            cls.methods[node.name] = info
            decorators = _decorator_names(node)
            if "property" in decorators or "cached_property" in decorators:
                cls.properties.add(node.name)
            _register_function(model, info)
            if node.name == "__init__":
                _scan_init(cls, node, path)
    return cls


def _scan_init(cls: ClassInfo, init: ast.FunctionDef, path: str) -> None:
    """Collect attribute types and lock attributes from ``__init__``."""
    param_types: dict[str, object] = {}
    args = init.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ref = type_from_annotation(arg.annotation)
        if ref is not None:
            param_types[arg.arg] = ref
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        annotation: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
            annotation = node.annotation
        else:
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            lock = _lock_from_call(value) if value is not None else None
            if lock is not None:
                kind, label = lock
                cls.lock_attrs.setdefault(
                    attr,
                    LockSite(
                        label=label or f"{cls.name}.{attr}",
                        kind=kind,
                        owner=cls.name,
                        attr=attr,
                        path=path,
                        line=value.lineno if value is not None else node.lineno,
                    ),
                )
                continue
            ref: object | None = None
            if annotation is not None:
                ref = type_from_annotation(annotation)
            if ref is None and isinstance(value, ast.Call):
                fn = value.func
                if isinstance(fn, ast.Name):
                    ref = fn.id
            if ref is None and isinstance(value, ast.Name):
                ref = param_types.get(value.id)
            if ref is not None:
                cls.attr_types.setdefault(attr, ref)


def _scan_module(model: RepoModel, path: Path) -> None:
    module_info = load_module(path)
    module = module_info.name
    tree = module_info.tree
    rel = module_info.relpath
    model.trees[rel] = tree
    model.module_imports[module] = _collect_imports(tree, module)
    model.module_functions.setdefault(module, {})
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            cls = _scan_class(model, node, module, rel)
            model.classes.setdefault(cls.name, []).append(cls)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            key = f"{module}:{node.name}"
            info = FuncInfo(
                key=key, name=node.name, module=module, path=rel, node=node
            )
            model.module_functions[module][node.name] = info
            _register_function(model, info)


# ----------------------------------------------------------------------
# Per-function analysis
# ----------------------------------------------------------------------


class _TypeEnv:
    """Flow-insensitive-ish local type environment (updated in order)."""

    def __init__(self, model: RepoModel, func: FuncInfo) -> None:
        self.model = model
        self.func = func
        self.vars: dict[str, object] = {}
        node = func.node
        if func.cls is not None and func.node.args.args:
            first = func.node.args.args[0].arg
            decorators = _decorator_names(func.node)
            if "staticmethod" not in decorators:
                self.vars[first] = func.cls.name
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ref = type_from_annotation(arg.annotation)
            if ref is not None and arg.arg not in self.vars:
                self.vars[arg.arg] = ref
            elif _is_callable_annotation(arg.annotation):
                self.vars.setdefault(arg.arg, "Callable")

    # -- resolution helpers -------------------------------------------

    def class_of(self, ref: object | None) -> ClassInfo | None:
        if isinstance(ref, str):
            return self.model.class_named(ref)
        return None

    def resolve_type(self, expr: ast.expr) -> object | None:
        """Best-effort type ref of an expression."""
        if isinstance(expr, ast.Name):
            ref = self.vars.get(expr.id)
            if ref is not None:
                return ref
            target = self._import_target(expr.id)
            if target is not None and target[1] == "class":
                # A bare class name types as the class itself (used for
                # classmethod receivers), not an instance.
                return ("classref", target[0])
            return None
        if isinstance(expr, ast.Attribute):
            base = self.resolve_type(expr.value)
            cls = self.class_of(base)
            if cls is not None:
                if expr.attr in cls.properties:
                    method = cls.methods.get(expr.attr)
                    if method is not None:
                        return type_from_annotation(method.node.returns)
                ref = cls.attr_types.get(expr.attr)
                if ref is not None:
                    return ref
            return None
        if isinstance(expr, ast.Call):
            targets = self.resolve_call(expr)
            for target in targets:
                info = self.model.functions.get(target)
                if info is None:
                    continue
                if info.name == "__init__" and info.cls is not None:
                    return info.cls.name
                ref = type_from_annotation(info.node.returns)
                if ref is not None:
                    return ref
            # list()/sorted()/tuple() keep their argument's shape.
            fn = expr.func
            if (
                isinstance(fn, ast.Name)
                and fn.id in ("list", "sorted", "tuple", "set", "frozenset")
                and expr.args
            ):
                return self.resolve_type(expr.args[0])
            if isinstance(fn, ast.Attribute) and fn.attr in ("get", "pop", "popleft"):
                base = self.resolve_type(fn.value)
                if isinstance(base, tuple) and base[0] == "dict":
                    return base[1]
                if isinstance(base, tuple) and base[0] == "seq":
                    return base[1]
            if isinstance(fn, ast.Attribute) and fn.attr in ("values",):
                base = self.resolve_type(fn.value)
                if isinstance(base, tuple) and base[0] == "dict":
                    return ("seq", base[1])
            if isinstance(fn, ast.Attribute) and fn.attr in ("items",):
                base = self.resolve_type(fn.value)
                if isinstance(base, tuple) and base[0] == "dict":
                    return ("items", base[1])
            return None
        if isinstance(expr, ast.Subscript):
            base = self.resolve_type(expr.value)
            if isinstance(base, tuple) and base[0] in ("dict", "seq"):
                return base[1]
            return None
        if isinstance(expr, ast.Lambda):
            return "Callable"
        return None

    def _import_target(self, name: str) -> tuple[str, str] | None:
        """Resolve an imported name to ('<dotted>', 'module'|'class'|'func')."""
        imports = self.model.module_imports.get(self.func.module, {})
        dotted = imports.get(name)
        if dotted is None:
            return None
        if dotted in self.model.module_functions:
            return (dotted, "module")
        mod, _, symbol = dotted.rpartition(".")
        for cls in self.model.all_classes_named(symbol):
            if cls.module == mod:
                return (symbol, "class")
        fn = self.model.module_functions.get(mod, {}).get(symbol)
        if fn is not None:
            return (fn.key, "func")
        return None

    def resolve_call(self, call: ast.Call) -> tuple[str, ...]:
        """Keys of the functions a call may dispatch to (resolved only)."""
        fn = call.func
        out: list[str] = []
        if isinstance(fn, ast.Name):
            name = fn.id
            # Nested function in an enclosing scope.
            scope: FuncInfo | None = self.func
            while scope is not None:
                nested = scope.nested.get(name)
                if nested is not None:
                    return (nested.key,)
                scope = scope.parent
            local = self.model.module_functions.get(self.func.module, {}).get(name)
            if local is not None:
                return (local.key,)
            target = self._import_target(name)
            if target is not None:
                kind = target[1]
                if kind == "func":
                    return (target[0],)
                if kind == "class":
                    for cls in self.model.all_classes_named(target[0]):
                        init = cls.methods.get("__init__")
                        if init is not None:
                            out.append(init.key)
                    return tuple(out)
            # Same-module class constructor.
            for cls in self.model.all_classes_named(name):
                if cls.module == self.func.module:
                    init = cls.methods.get("__init__")
                    if init is not None:
                        out.append(init.key)
            return tuple(out)
        if isinstance(fn, ast.Attribute):
            receiver = fn.value
            method = fn.attr
            # Module alias: counting.node_scores(...)
            if isinstance(receiver, ast.Name):
                target = self._import_target(receiver.id)
                if target is not None and target[1] == "module":
                    info = self.model.module_functions.get(target[0], {}).get(method)
                    if info is not None:
                        return (info.key,)
                    for cls in self.model.all_classes_named(method):
                        if cls.module == target[0]:
                            init = cls.methods.get("__init__")
                            if init is not None:
                                return (init.key,)
                    return ()
            ref = self.resolve_type(receiver)
            if isinstance(ref, tuple) and ref[0] == "classref":
                cls = self.model.class_named(str(ref[1]))
                if cls is not None:
                    resolved = self._method_on(cls, method)
                    if resolved is not None:
                        return (resolved.key,)
                return ()
            cls = self.class_of(ref)
            if cls is not None:
                resolved = self._method_on(cls, method)
                if resolved is not None:
                    return (resolved.key,)
                return ()
        return ()

    def _method_on(self, cls: ClassInfo, name: str) -> FuncInfo | None:
        seen = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            method = current.methods.get(name)
            if method is not None:
                return method
            for base in current.bases:
                parent = self.model.class_named(base)
                if parent is not None:
                    queue.append(parent)
        return None

    # -- assignments ---------------------------------------------------

    def bind_assign(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            ref = self.resolve_type(node.value)
            if ref is None:
                return
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.vars[target.id] = ref
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ref = type_from_annotation(node.annotation)
            if ref is None and node.value is not None:
                ref = self.resolve_type(node.value)
            if ref is not None:
                self.vars[node.target.id] = ref

    def bind_for(self, node: ast.For) -> None:
        ref = self.resolve_type(node.iter)
        if isinstance(ref, tuple) and ref[0] == "seq":
            element = ref[1]
            if isinstance(node.target, ast.Name) and element is not None:
                self.vars[node.target.id] = element
        elif isinstance(ref, tuple) and ref[0] == "items":
            value = ref[1]
            if (
                isinstance(node.target, ast.Tuple)
                and len(node.target.elts) == 2
                and isinstance(node.target.elts[1], ast.Name)
                and value is not None
            ):
                self.vars[node.target.elts[1].id] = value
        elif isinstance(ref, tuple) and ref[0] == "dict":
            return


def _lock_label_of(
    expr: ast.expr, env: _TypeEnv, func: FuncInfo
) -> str | None:
    """The lock label an expression denotes, if it is a known lock."""
    if isinstance(expr, ast.Name):
        scope: FuncInfo | None = func
        while scope is not None:
            site = scope.local_locks.get(expr.id)
            if site is not None:
                return site.label
            scope = scope.parent
        return None
    if isinstance(expr, ast.Attribute):
        ref = env.resolve_type(expr.value)
        cls = env.class_of(ref)
        if cls is not None:
            site = cls.lock_attrs.get(expr.attr)
            if site is not None:
                return site.label
    return None


def _call_desc(call: ast.Call) -> str:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return f".{fn.attr}"
    return "<call>"


class _FunctionWalker:
    """Walks one function in source order tracking held lock labels."""

    def __init__(self, model: RepoModel, func: FuncInfo) -> None:
        self.model = model
        self.func = func
        self.env = _TypeEnv(model, func)
        self.analysis = FuncAnalysis()
        self.held: list[str] = []
        self.rest_of_function: list[str] = []
        if func.name.endswith("_locked") and func.cls is not None:
            for site in func.cls.lock_attrs.values():
                self.held.append(site.label)
                break

    # -- recording -----------------------------------------------------

    def _held_now(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys([*self.held, *self.rest_of_function]))

    def _record_acquire(self, label: str, line: int) -> None:
        self.analysis.acquires.append(
            AcquireEvent(
                held=self._held_now(), label=label, line=line,
                func_key=self.func.key,
            )
        )

    def _record_call(self, call: ast.Call) -> None:
        targets = self.env.resolve_call(call)
        self.analysis.calls.append(
            CallEvent(
                held=self._held_now(),
                line=call.lineno,
                func_key=self.func.key,
                targets=targets,
                call_desc=_call_desc(call),
                node_id=id(call),
            )
        )

    # -- traversal -----------------------------------------------------

    def walk(self) -> FuncAnalysis:
        for stmt in self.func.node.body:
            self._visit_stmt(stmt)
        return self.analysis

    def _visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._register_nested(node)
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, ast.With):
            self._visit_with(node)
            return
        if isinstance(node, ast.For):
            self._visit_expr(node.iter)
            self.env.bind_for(node)
            for child in node.body:
                self._visit_stmt(child)
            for child in node.orelse:
                self._visit_stmt(child)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._visit_expr(node.test)
            for child in node.body:
                self._visit_stmt(child)
            for child in node.orelse:
                self._visit_stmt(child)
            return
        if isinstance(node, ast.Try):
            for child in node.body:
                self._visit_stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._visit_stmt(child)
            for child in node.orelse:
                self._visit_stmt(child)
            for child in node.finalbody:
                self._visit_stmt(child)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if node.value is not None:
                self._maybe_local_lock(node)
                self._visit_expr(node.value)
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self.env.bind_assign(node)
            return
        if isinstance(node, ast.Return) and node.value is not None:
            self._visit_expr(node.value)
            return
        if isinstance(node, ast.Expr):
            self._visit_expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.stmt):
                self._visit_stmt(child)

    def _register_nested(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        key = f"{self.func.key}.<locals>.{node.name}"
        info = FuncInfo(
            key=key,
            name=node.name,
            module=self.func.module,
            path=self.func.path,
            node=node,
            cls=self.func.cls,
            parent=self.func,
        )
        self.func.nested[node.name] = info
        _register_function(self.model, info)

    def _maybe_local_lock(self, node: ast.stmt) -> None:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            return
        value = node.value
        if value is None:
            return
        lock = _lock_from_call(value)
        if lock is None:
            return
        kind, label = lock
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                site = LockSite(
                    label=label or f"{self.func.name}.{target.id}",
                    kind=kind,
                    owner=self.func.cls.name if self.func.cls else None,
                    attr=target.id,
                    path=self.func.path,
                    line=value.lineno,
                )
                self.func.local_locks[target.id] = site
                self.model.locks.append(site)

    def _visit_with(self, node: ast.With) -> None:
        pushed: list[str] = []
        for item in node.items:
            self._visit_expr(item.context_expr)
            label = _lock_label_of(item.context_expr, self.env, self.func)
            if label is not None:
                self._record_acquire(label, item.context_expr.lineno)
                self.held.append(label)
                pushed.append(label)
        for child in node.body:
            self._visit_stmt(child)
        for label in reversed(pushed):
            self.held.remove(label)

    def _visit_expr(self, node: ast.expr) -> None:
        for call in self._calls_in(node):
            fn = call.func
            if isinstance(fn, ast.Attribute) and fn.attr == "acquire":
                label = _lock_label_of(fn.value, self.env, self.func)
                if label is not None:
                    self._record_acquire(label, call.lineno)
                    # acquire()-then-try/finally: held for the rest of
                    # the function (coarse, matches the repo idiom).
                    self.rest_of_function.append(label)
                    continue
            self._record_call(call)
        # Property loads execute their getter: record as call events.
        for attr in ast.walk(node):
            if not isinstance(attr, ast.Attribute) or not isinstance(
                attr.ctx, ast.Load
            ):
                continue
            ref = self.env.resolve_type(attr.value)
            cls = self.env.class_of(ref)
            if cls is not None and attr.attr in cls.properties:
                method = cls.methods.get(attr.attr)
                if method is not None:
                    self.analysis.calls.append(
                        CallEvent(
                            held=self._held_now(),
                            line=attr.lineno,
                            func_key=self.func.key,
                            targets=(method.key,),
                            call_desc=f".{attr.attr}",
                            node_id=id(attr),
                        )
                    )

    def _calls_in(self, node: ast.expr) -> Iterator[ast.Call]:
        # Manual walk skipping Lambda bodies: a lambda's calls execute
        # later, not at this site (so not under the locks held here).
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Lambda):
                continue
            if isinstance(current, ast.Call):
                yield current
            stack.extend(ast.iter_child_nodes(current))


# ----------------------------------------------------------------------
# Fixpoint + graph assembly
# ----------------------------------------------------------------------


def _analyze_all(model: RepoModel) -> None:
    # Two passes: the first registers nested functions and local locks,
    # the second re-walks so forward references (a nested function used
    # before its def, a lock bound later) resolve.
    for _ in range(2):
        pending = list(model.functions.values())
        for func in pending:
            model.analyses[func.key] = _FunctionWalker(model, func).walk()


#: Method names too generic for name-fallback resolution: they collide
#: with builtin-container methods, so an unresolved receiver would pick
#: up unrelated classes' acquisitions and fabricate edges.
_FALLBACK_DENYLIST = frozenset(
    {
        "get",
        "pop",
        "popleft",
        "items",
        "keys",
        "values",
        "append",
        "appendleft",
        "add",
        "remove",
        "discard",
        "update",
        "clear",
        "copy",
        "setdefault",
        "extend",
        "sort",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "move_to_end",
        "format",
        "close",
        # Stream-method names: ``stdout.flush()`` must not match a
        # repository class that happens to define ``flush``.
        "write",
        "flush",
        "read",
        "readline",
        "readlines",
        "send",
        "recv",
        "wait",
        "notify",
        "notify_all",
        "acquire",
        "release",
    }
)


def _fallback_targets(model: RepoModel, event: CallEvent) -> tuple[str, ...]:
    """Resolved targets, else a conservative name-based method match.

    The fallback keeps the static graph a *superset* of runtime
    behaviour when the receiver's type could not be inferred; it is
    only used for acquisition summaries (never for blocking-work
    propagation, which needs precision, not coverage).
    """
    if event.targets:
        return event.targets
    if not event.call_desc.startswith("."):
        return ()
    name = event.call_desc[1:]
    if name in _FALLBACK_DENYLIST:
        return ()
    infos = model.methods_by_name.get(name, [])
    if not infos or len(infos) > 4:
        return ()
    return tuple(info.key for info in infos)


def compute_may_acquire(model: RepoModel) -> dict[str, frozenset[str]]:
    """Fixpoint: labels each function can transitively acquire."""
    summary: dict[str, set[str]] = {key: set() for key in model.functions}
    for key, analysis in model.analyses.items():
        for acq in analysis.acquires:
            summary[key].add(acq.label)
    changed = True
    while changed:
        changed = False
        for key, analysis in model.analyses.items():
            mine = summary[key]
            before = len(mine)
            for event in analysis.calls:
                for target in _fallback_targets(model, event):
                    mine.update(summary.get(target, ()))
            if len(mine) != before:
                changed = True
    result = {key: frozenset(value) for key, value in summary.items()}
    model.may_acquire = result
    return result


def lock_edges(model: RepoModel) -> dict[tuple[str, str], LockEdge]:
    """Every held->acquired edge with one witness site per edge."""
    if not model.may_acquire:
        compute_may_acquire(model)
    edges: dict[tuple[str, str], LockEdge] = {}

    def add(src: str, dst: str, path: str, line: int, via: str) -> None:
        if src == dst:
            return
        edges.setdefault(
            (src, dst), LockEdge(src=src, dst=dst, path=path, line=line, via=via)
        )

    for key, analysis in model.analyses.items():
        func = model.functions[key]
        for acq in analysis.acquires:
            for held in acq.held:
                add(held, acq.label, func.path, acq.line, key)
        for event in analysis.calls:
            if not event.held:
                continue
            for target in _fallback_targets(model, event):
                for label in model.may_acquire.get(target, ()):
                    for held in event.held:
                        add(held, label, func.path, event.line, key)
    return edges


def find_cycles(edges: Iterable[tuple[str, str]]) -> list[list[str]]:
    """Elementary cycles (as label lists) in the lock graph, if any."""
    adjacency: dict[str, set[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())
    # Tarjan SCC: any component with >1 node contains a cycle.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(adjacency.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                cycles.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)
    return cycles


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------


def graph_as_json(model: RepoModel) -> dict:
    """JSON-serialisable lock-order graph (locks, edges, cycles)."""
    edges = lock_edges(model)
    seen_labels: dict[str, LockSite] = {}
    for site in model.locks:
        seen_labels.setdefault(site.label, site)
    return {
        "locks": [
            {
                "label": site.label,
                "kind": site.kind,
                "owner": site.owner,
                "path": site.path,
                "line": site.line,
            }
            for _, site in sorted(seen_labels.items())
        ],
        "edges": [
            {
                "from": edge.src,
                "to": edge.dst,
                "path": edge.path,
                "line": edge.line,
                "via": edge.via,
            }
            for _, edge in sorted(edges.items())
        ],
        "cycles": find_cycles(edges),
    }


def graph_as_dot(model: RepoModel) -> str:
    """Graphviz DOT form of the lock-order graph."""
    data = graph_as_json(model)
    cyclic = {label for cycle in data["cycles"] for label in cycle}
    lines = [
        "digraph lock_order {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for lock in data["locks"]:
        color = ' color="red"' if lock["label"] in cyclic else ""
        lines.append(
            f'  "{lock["label"]}" [label="{lock["label"]}\\n({lock["kind"]})"{color}];'
        )
    for edge in data["edges"]:
        attr = ' [color="red"]' if edge["from"] in cyclic and edge["to"] in cyclic else ""
        lines.append(f'  "{edge["from"]}" -> "{edge["to"]}"{attr};')
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Entry points with caching
# ----------------------------------------------------------------------

_MODEL_CACHE: dict[tuple, RepoModel] = {}


def build_model(files: Sequence[Path]) -> RepoModel:
    """Parse and analyze the given files into a :class:`RepoModel`."""
    stamp = tuple(
        (str(path), path.stat().st_mtime_ns, path.stat().st_size)
        for path in files
    )
    cached = _MODEL_CACHE.get(stamp)
    if cached is not None:
        return cached
    model = RepoModel()
    for path in files:
        _scan_module(model, path)
    # Method-name index and the class lock sites must exist before the
    # function analysis runs: the name-fallback resolution reads the
    # former, and the export lists every site from ``model.locks``.
    for info in model.functions.values():
        if info.cls is not None and info.parent is None:
            model.methods_by_name.setdefault(info.name, []).append(info)
    seen_classes: set[int] = set()
    for group in model.classes.values():
        for cls in group:
            if id(cls) in seen_classes:
                continue
            seen_classes.add(id(cls))
            if cls.module == "repro.concurrency":
                # The tracked-lock wrappers' own inner primitives are
                # instrumentation plumbing, not contract lock sites.
                continue
            model.locks.extend(cls.lock_attrs.values())
    _analyze_all(model)
    compute_may_acquire(model)
    _MODEL_CACHE.clear()
    _MODEL_CACHE[stamp] = model
    return model


def model_for_root(root: Path | None = None) -> RepoModel:
    """The model over the repository's ``src/repro`` tree."""
    return build_model(list(iter_source_files(root)))
