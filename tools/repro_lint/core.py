"""Shared infrastructure for the repro-lint rules and runner.

A rule is a callable ``(module: ModuleInfo) -> Iterable[Violation]``
registered in :mod:`tools.repro_lint.rules`; project-scope rules (those
that need the whole tree or a live import, like the registry-metadata
checks) take the repository root instead. This module provides the
module loader, the suppression-comment scanner, the ratchet baseline and
the report aggregation the runner prints.

Suppressions: a line containing ``# repro-lint: ignore=<rule>`` (or
``ignore=<rule1>,<rule2>``) silences those rules for violations anchored
on that line. Use sparingly — every suppression is a claim that the
contract is intentionally waived at that site.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Repository root (``tools/repro_lint/core.py`` -> two parents up).
ROOT = Path(__file__).resolve().parent.parent.parent

#: Where the ratchet baseline lives.
BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

#: Fixture files may override their virtual module name with this
#: directive so path-sensitive rules (layering) see realistic names.
FIXTURE_MODULE_DIRECTIVE = re.compile(
    r"#\s*repro-lint-fixture-module:\s*(?P<name>[\w.]+)"
)

_SUPPRESS = re.compile(r"#\s*repro-lint:\s*ignore=(?P<rules>[\w,-]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def fingerprint(self) -> str:
        """Baseline identity: stable across line-number drift."""
        return f"{self.rule}|{self.path}|{self.message}"

    def render(self) -> str:
        """Human-readable single-line form."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed source module handed to every AST rule."""

    path: Path
    name: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def relpath(self) -> str:
        """Path relative to the repository root (or absolute if outside)."""
        try:
            return str(self.path.relative_to(ROOT))
        except ValueError:
            return str(self.path)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed on ``line``."""
        return rule in self.suppressions.get(line, set())


def module_name_for(path: Path) -> str:
    """Dotted module name for a file under ``src/`` (best effort)."""
    resolved = path.resolve()
    src = ROOT / "src"
    try:
        parts = resolved.relative_to(src).with_suffix("").parts
    except ValueError:
        parts = (resolved.stem,)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else resolved.stem


def load_module(path: Path) -> ModuleInfo:
    """Parse one source file into a :class:`ModuleInfo`.

    Honours the fixture-module directive and records suppression
    comments per line.
    """
    source = path.read_text(encoding="utf-8")
    directive = FIXTURE_MODULE_DIRECTIVE.search(source)
    name = directive.group("name") if directive else module_name_for(path)
    suppressions: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(text)
        if match:
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            suppressions.setdefault(lineno, set()).update(rules)
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=path, name=name, source=source, tree=tree, suppressions=suppressions
    )


def iter_source_files(root: Path | None = None) -> Iterator[Path]:
    """Every ``src/repro`` Python file, sorted for stable output."""
    base = (root or ROOT) / "src" / "repro"
    yield from sorted(base.rglob("*.py"))


@dataclass
class LintReport:
    """Aggregated result of a lint run."""

    violations: list[Violation] = field(default_factory=list)
    new: list[Violation] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    stale_suppressions: list[str] = field(default_factory=list)
    per_rule: dict[str, int] = field(default_factory=dict)
    files_checked: int = 0

    @property
    def failed(self) -> bool:
        """New violations fail; so does stale debt.

        A baseline entry that no longer fires, or an ``ignore=``
        comment that no longer suppresses anything, is a ratchet that
        must be tightened — leaving it in place silently re-opens the
        door for the violation to return unnoticed.
        """
        return bool(self.new or self.stale_baseline or self.stale_suppressions)


def load_baseline(path: Path | None = None) -> set[str]:
    """Read the ratchet baseline (empty when the file is absent)."""
    target = path or BASELINE_PATH
    if not target.exists():
        return set()
    data = json.loads(target.read_text(encoding="utf-8"))
    return set(data.get("entries", []))


def write_baseline(fingerprints: Iterable[str], path: Path | None = None) -> None:
    """Rewrite the ratchet baseline with the given fingerprints."""
    target = path or BASELINE_PATH
    payload = {
        "comment": (
            "Ratchet baseline: known violations tolerated by "
            "`python -m tools.repro_lint`. This file only ever shrinks; "
            "regenerate with --update-baseline after fixing entries."
        ),
        "entries": sorted(set(fingerprints)),
    }
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def run_rules(
    file_rules: dict[str, Callable[[ModuleInfo], Iterable[Violation]]],
    project_rules: dict[str, Callable[[Path], Iterable[Violation]]],
    *,
    root: Path | None = None,
    baseline: set[str] | None = None,
    files: Iterable[Path] | None = None,
) -> LintReport:
    """Run rules over the tree and diff the result against the baseline.

    ``file_rules`` run per parsed module; ``project_rules`` run once
    with the repository root. ``files`` overrides the default
    ``src/repro`` walk (used by the fixture tests).
    """
    report = LintReport()
    baseline = set(baseline or ())
    run_set = set(file_rules) | set(project_rules)
    targets = list(files) if files is not None else list(iter_source_files(root))
    modules: dict[str, ModuleInfo] = {}
    used_suppressions: set[tuple[str, int, str]] = set()
    for path in targets:
        module = load_module(path)
        modules[module.relpath] = module
        report.files_checked += 1
        for rule_name, rule in file_rules.items():
            for violation in rule(module):
                if module.suppressed(violation.rule, violation.line):
                    used_suppressions.add(
                        (module.relpath, violation.line, violation.rule)
                    )
                    continue
                report.violations.append(violation)
    for rule_name, rule in project_rules.items():
        for violation in rule(root or ROOT):
            module = modules.get(violation.path)
            if module is not None and module.suppressed(
                violation.rule, violation.line
            ):
                used_suppressions.add(
                    (violation.path, violation.line, violation.rule)
                )
                continue
            report.violations.append(violation)
    for violation in report.violations:
        report.per_rule[violation.rule] = report.per_rule.get(violation.rule, 0) + 1
        if violation.fingerprint() not in baseline:
            report.new.append(violation)
    fired = {v.fingerprint() for v in report.violations}
    # Staleness is judged only for rules that actually ran: a --rules
    # subset must not report the other rules' debt as stale.
    scoped = {e for e in baseline if e.split("|", 1)[0] in run_set}
    report.stale_baseline = sorted(scoped - fired)
    for relpath in sorted(modules):
        for line, rules in sorted(modules[relpath].suppressions.items()):
            for rule in sorted(rules):
                if rule in run_set and (relpath, line, rule) not in used_suppressions:
                    report.stale_suppressions.append(
                        f"{relpath}:{line}: ignore={rule} suppresses nothing"
                    )
    return report
