"""Interprocedural determinism analysis for repro-lint.

Three project-scope rules on top of the shared concurrency
:class:`~tools.repro_lint.concurrency.model.RepoModel` plus the
ordering-type lattice in :mod:`tools.repro_lint.determinism.model`:

``iterorder``
    Set/frozenset values and dict views must not reach ordered sinks
    (sequence materialisation, ``enumerate``, ``join``, ``*``
    unpacking, unstable numpy sorts, hash-keyed orderings) without a
    canonicalizer. Hash-table iteration order is insertion-history- and
    ``PYTHONHASHSEED``-dependent; the equivalence suites pin exact
    output, so order must be chosen, not inherited.

``rngflow``
    Every RNG construction must receive a seed traceable to a caller-
    supplied value or the canonical ``SEEDS`` table; the legacy numpy
    global-state API, module-level ``random.*`` and ambient-entropy
    seeds fail.

``envdep``
    Environment reads (``os.cpu_count``, start-method queries,
    monotonic clocks, env vars) may steer scheduling but must not flow
    into solutions, pinned stats or checkpoint payloads.

``FIXTURE_CHECKERS`` maps each rule name to a file-list entry point so
the fixture corpus tests can run a rule over a single synthetic module.
The static model is validated end-to-end by the CI hash-randomization
leg: tier-1 plus ``repro bench --smoke`` run twice under two distinct
``PYTHONHASHSEED`` values and the solution/stat digests must match
byte-for-byte (see tools/determinism_digest.py).
"""

from __future__ import annotations

from tools.repro_lint.determinism.envdep import (
    check_envdep,
    check_envdep_files,
)
from tools.repro_lint.determinism.iterorder import (
    check_iterorder,
    check_iterorder_files,
)
from tools.repro_lint.determinism.rngflow import (
    check_rngflow,
    check_rngflow_files,
)

#: rule name -> callable(list[Path]) -> list[Violation], for fixtures.
FIXTURE_CHECKERS = {
    "iterorder": check_iterorder_files,
    "rngflow": check_rngflow_files,
    "envdep": check_envdep_files,
}

__all__ = [
    "FIXTURE_CHECKERS",
    "check_envdep",
    "check_envdep_files",
    "check_iterorder",
    "check_iterorder_files",
    "check_rngflow",
    "check_rngflow_files",
]
