"""``envdep``: environment may steer *scheduling*, never *results*.

The parallel tier, the serving scheduler and the bench harness all read
the environment on purpose — worker counts from ``os.cpu_count()``,
deadlines from ``time.monotonic()``, knobs from env vars. That is fine
*as long as* the values only decide how fast work happens, not what the
work produces: the equivalence suites pin solutions, stats and
checkpoint bytes across worker counts and start methods, so an
environment read that leaks into any of those is a reproducibility
defect even when every machine in CI happens to agree today.

The rule taints local values produced by environment sources:

* ``os.cpu_count`` / ``multiprocessing.cpu_count``
* ``multiprocessing.get_start_method`` / ``get_all_start_methods``
* ``time.monotonic`` / ``perf_counter`` / ``time`` / ``process_time``
  (and their ``_ns`` forms)
* ``os.getenv`` / ``os.environ.get`` / ``os.environ[...]``

propagates the taint through assignments and arithmetic, summarises
functions whose *return value* is env-derived (interprocedural fixpoint
over the shared :class:`RepoModel` call graph), and fails when a
tainted value reaches a **result sink**:

* a value in the dict payload returned by a ``checkpoint``/
  ``state_dict`` method (checkpoints must restore bit-identically on
  any machine);
* a write to a pinned stats key — every key in
  :data:`~tools.repro_lint.rules.stats_keys.CANONICAL_KEYS` except the
  wall-clock ``seconds_total`` aggregate;
* an argument to ``frozenset(...)`` or to ``.append``/``.add`` on a
  solution-carrying receiver (``cliques``/``solution``/``selected``).

Scheduling uses (chunk sizes, timeouts, worker counts, deadlines,
elapsed-time reporting outside pinned stats) are untouched. A sink that
is provably scheduling-only despite its shape carries a
``# repro-lint: ignore=envdep`` waiver with the argument.
"""

from __future__ import annotations

import ast
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from tools.repro_lint.concurrency import model as _cmodel
from tools.repro_lint.core import Violation, iter_source_files
from tools.repro_lint.determinism.model import dotted_name

RULE = "envdep"

#: ``module.attr`` call targets whose result depends on the environment.
_ENV_CALLS = frozenset(
    {
        "os.cpu_count",
        "multiprocessing.cpu_count",
        "multiprocessing.get_start_method",
        "multiprocessing.get_all_start_methods",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.time",
        "time.time_ns",
        "time.process_time",
        "time.process_time_ns",
        "os.getenv",
        "os.environ.get",
    }
)

#: Bare-name call heads that are env sources when imported directly
#: (``from os import cpu_count``, ``from time import monotonic``).
_ENV_HEADS = frozenset(
    {
        "cpu_count",
        "get_start_method",
        "get_all_start_methods",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "getenv",
    }
)

def _pinned_stats() -> frozenset[str]:
    """Stats keys the equivalence/bench suites pin exactly.

    Wall-clock aggregates are the scheduling exception. Imported lazily:
    ``rules.stats_keys`` lives under the ``rules`` package whose
    ``__init__`` imports this module (registry wiring), so a module-level
    import would be circular.
    """
    from tools.repro_lint.rules.stats_keys import CANONICAL_KEYS

    return CANONICAL_KEYS - {"seconds_total"}

#: Method names whose returned dict payload must be environment-free.
_PAYLOAD_FUNCS = frozenset({"checkpoint", "state_dict", "to_payload"})

#: Receiver name fragments that mark a solution-carrying container.
_SOLUTION_NAMES = ("clique", "solution", "selected")


def _violation(func: _cmodel.FuncInfo, line: int, message: str) -> Violation:
    return Violation(rule=RULE, path=func.path, line=line, message=message)


def _is_env_call(
    imports: dict[str, str], expr: ast.expr, env_returns: set[str],
    resolver: "_Resolver",
) -> str | None:
    """If ``expr`` is an environment-source call, name the source."""
    if not isinstance(expr, ast.Call):
        return None
    fn = expr.func
    name = dotted_name(fn)
    if name is not None:
        head, _, rest = name.partition(".")
        resolved = imports.get(head, head)
        full = f"{resolved}.{rest}" if rest else resolved
        if full in _ENV_CALLS:
            return full
        # os.environ[...] handled at the Subscript level; .get on environ:
        if full.endswith("environ.get"):
            return "os.environ.get"
    if isinstance(fn, ast.Name) and fn.id in _ENV_HEADS:
        target = imports.get(fn.id)
        if target is None or any(
            target.startswith(mod) for mod in ("os", "time", "multiprocessing")
        ):
            return fn.id
    # Interprocedural: a repo function summarised as returning env state.
    for key in resolver.resolve(expr):
        if key in env_returns:
            return f"{key}() (returns an environment-derived value)"
    return None


def _is_environ_subscript(imports: dict[str, str], expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Subscript):
        return False
    name = dotted_name(expr.value)
    if name is None:
        return False
    head, _, rest = name.partition(".")
    resolved = imports.get(head, head)
    full = f"{resolved}.{rest}" if rest else resolved
    return full.endswith("os.environ") or full == "environ"


class _Resolver:
    """Thin memoising wrapper around ``_TypeEnv.resolve_call``."""

    def __init__(self, model: _cmodel.RepoModel, func: _cmodel.FuncInfo) -> None:
        self.env = _cmodel._TypeEnv(model, func)

    def resolve(self, call: ast.Call) -> tuple[str, ...]:
        try:
            return tuple(self.env.resolve_call(call))
        except Exception:  # pragma: no cover - resolution is best-effort
            return ()


def _env_tainted_returns(model: _cmodel.RepoModel) -> set[str]:
    """Fixpoint: function keys whose return value is environment-derived.

    One-level propagation per round: a function returning a tainted
    local, an env call, or a call to an already-summarised function
    joins the set; iterate until stable.
    """
    summary: set[str] = set()
    changed = True
    while changed:
        changed = False
        for func in model.functions.values():
            if func.key in summary:
                continue
            if _returns_env(model, func, summary):
                summary.add(func.key)
                changed = True
    return summary


def _returns_env(
    model: _cmodel.RepoModel, func: _cmodel.FuncInfo, summary: set[str]
) -> bool:
    imports = model.module_imports.get(func.module, {})
    resolver = _Resolver(model, func)
    tainted: set[str] = set()
    returns_tainted = False
    queue: deque[ast.AST] = deque(ast.iter_child_nodes(func.node))
    while queue:
        node = queue.popleft()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value is not None:
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if _expr_tainted(node.value, imports, tainted, summary, resolver):
                for target in targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        elif isinstance(node, ast.Return) and node.value is not None:
            if _expr_tainted(node.value, imports, tainted, summary, resolver):
                returns_tainted = True
        queue.extend(ast.iter_child_nodes(node))
    return returns_tainted


def _expr_tainted(
    expr: ast.expr,
    imports: dict[str, str],
    tainted: set[str],
    env_returns: set[str],
    resolver: _Resolver,
) -> bool:
    """Whether any part of ``expr`` carries environment taint."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        if _is_env_call(imports, node, env_returns, resolver) is not None:
            return True
        if _is_environ_subscript(imports, node):
            return True
    return False


class _Checker:
    def __init__(
        self,
        model: _cmodel.RepoModel,
        func: _cmodel.FuncInfo,
        env_returns: set[str],
    ) -> None:
        self.model = model
        self.func = func
        self.env_returns = env_returns
        self.imports = model.module_imports.get(func.module, {})
        self.resolver = _Resolver(model, func)
        self.tainted: set[str] = set()
        self.out: list[Violation] = []

    def _tainted(self, expr: ast.expr) -> bool:
        return _expr_tainted(
            expr, self.imports, self.tainted, self.env_returns, self.resolver
        )

    def run(self) -> list[Violation]:
        queue: deque[ast.AST] = deque(ast.iter_child_nodes(self.func.node))
        while queue:
            node = queue.popleft()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                if node.value is not None:
                    self._check_stats_write(node)
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if self._tainted(node.value):
                        for target in targets:
                            if isinstance(target, ast.Name):
                                self.tainted.add(target.id)
            elif isinstance(node, ast.AugAssign):
                self._check_stats_augwrite(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._check_payload_return(node)
            elif isinstance(node, ast.Call):
                self._check_call(node)
            queue.extend(ast.iter_child_nodes(node))
        return self.out

    # -- sinks ---------------------------------------------------------

    def _pinned_stats_target(self, target: ast.expr) -> str | None:
        if not isinstance(target, ast.Subscript):
            return None
        base = target.value
        is_stats = (
            isinstance(base, ast.Name) and "stats" in base.id
        ) or (isinstance(base, ast.Attribute) and "stats" in base.attr)
        if not is_stats:
            return None
        key = target.slice
        if isinstance(key, ast.Constant) and key.value in _pinned_stats():
            return str(key.value)
        return None

    def _check_stats_write(self, node: ast.Assign | ast.AnnAssign) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        assert node.value is not None
        for target in targets:
            key = self._pinned_stats_target(target)
            if key is not None and self._tainted(node.value):
                self.out.append(
                    _violation(
                        self.func,
                        node.value.lineno,
                        f'environment-derived value written to pinned stats '
                        f'key "{key}" — the equivalence suites pin this '
                        "counter exactly; keep environment reads in "
                        "scheduling-only state",
                    )
                )

    def _check_stats_augwrite(self, node: ast.AugAssign) -> None:
        key = self._pinned_stats_target(node.target)
        if key is not None and self._tainted(node.value):
            self.out.append(
                _violation(
                    self.func,
                    node.value.lineno,
                    f'environment-derived value accumulated into pinned '
                    f'stats key "{key}" — pinned counters must be '
                    "machine-independent",
                )
            )

    def _check_payload_return(self, node: ast.Return) -> None:
        if self.func.name not in _PAYLOAD_FUNCS:
            return
        value = node.value
        assert value is not None
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if self._tainted(val):
                    label = (
                        repr(key.value)
                        if isinstance(key, ast.Constant)
                        else "<computed>"
                    )
                    self.out.append(
                        _violation(
                            self.func,
                            val.lineno,
                            f"environment-derived value in {self.func.name}() "
                            f"payload key {label} — checkpoints must restore "
                            "bit-identically on any machine",
                        )
                    )
        elif self._tainted(value):
            self.out.append(
                _violation(
                    self.func,
                    value.lineno,
                    f"environment-derived value returned from "
                    f"{self.func.name}() — checkpoint/state payloads must "
                    "be machine-independent",
                )
            )

    def _check_call(self, call: ast.Call) -> None:
        fn = call.func
        head = fn.id if isinstance(fn, ast.Name) else None
        if head == "frozenset" and call.args and self._tainted(call.args[0]):
            self.out.append(
                _violation(
                    self.func,
                    call.lineno,
                    "environment-derived value reaches frozenset() — clique "
                    "payloads must not encode machine state",
                )
            )
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("append", "add")
            and call.args
        ):
            receiver = fn.value
            rec_name = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr
                if isinstance(receiver, ast.Attribute)
                else ""
            )
            if any(frag in rec_name for frag in _SOLUTION_NAMES):
                if self._tainted(call.args[0]):
                    self.out.append(
                        _violation(
                            self.func,
                            call.lineno,
                            f"environment-derived value .{fn.attr}()-ed onto "
                            f"solution container '{rec_name}' — results must "
                            "not depend on the environment",
                        )
                    )


def _violations(model: _cmodel.RepoModel) -> Iterator[Violation]:
    env_returns = _env_tainted_returns(model)
    seen: set[tuple[str, int, str]] = set()
    for func in model.functions.values():
        for violation in _Checker(model, func, env_returns).run():
            key = (violation.path, violation.line, violation.message)
            if key not in seen:
                seen.add(key)
                yield violation


def check_envdep_files(files: Sequence[Path]) -> list[Violation]:
    """Run the check over an explicit file list (fixture mode)."""
    model = _cmodel.build_model(list(files))
    return list(_violations(model))


def check_envdep(root: Path | None = None) -> Iterable[Violation]:
    """Project rule: environment/result separation over ``src/repro``."""
    return check_envdep_files(list(iter_source_files(root)))
