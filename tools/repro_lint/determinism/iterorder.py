"""``iterorder``: unordered iteration must not reach ordered sinks raw.

Every equivalence suite in this repository pins *exact* solution lists,
stats and checkpoint bytes — so any place where a ``set``/``frozenset``
or a dict view is materialised into an order-bearing value is a latent
reproducibility break: hash-table iteration order is a function of
insertion history and (for str/bytes elements) ``PYTHONHASHSEED``.
Following the "control ordering to make exact search practical"
discipline (Rossi et al., arXiv:1210.5802), order must be *chosen*, not
inherited from a hash table.

Flagged patterns (see :mod:`tools.repro_lint.determinism.model` for how
set-ness is resolved — annotations, constructors, set algebra, resolved
call returns):

* **Ordered sinks over unordered iterables** — ``list(x)`` /
  ``tuple(x)``, ``enumerate(x)``, ``sep.join(x)``, ``seq.extend(x)``,
  list comprehensions, and ``*x`` unpacking into a list/tuple/call,
  where ``x`` types as a set or dict view and no canonicalizer
  (``sorted``, ``canonicalize``, ``json_safe``, ``np.sort``, the lex
  helpers) intervenes. Order-insensitive consumers (membership, ``sum``/
  ``min``/``max``/``len``/``any``/``all``, set/dict comprehensions,
  statement ``for`` loops) are not sinks.
* **Dict-view escapes** — binding ``d.keys()``/``.values()``/
  ``.items()`` to a name or returning it: an aliased view hides its
  eventual consumption from per-site analysis; use the dict itself for
  membership or canonicalize at the use site.
* **Unstable numpy sorts** — ``np.sort``/``np.argsort`` (module or
  method form) without ``kind="stable"``: tie order is
  implementation-defined, and ties are exactly where equal-score nodes
  land in solutions. ``np.lexsort`` is always stable.
* **Hash-dependent orderings** — ``hash``/``id`` used as a sort key
  (``key=hash`` or a ``key=lambda`` calling them): ``id`` varies per
  process, ``str`` hashes per ``PYTHONHASHSEED``.
* **Arbitrary-element selection** — ``s.pop()`` on a set-typed value
  and ``sorted(x, key=...)`` over an unordered iterable (stable ties
  fall back to hash order).

Sites whose downstream use is provably order-insensitive (an
accumulating sum, a membership-only structure) carry a
``# repro-lint: ignore=iterorder`` waiver with the argument, per the
determinism contract in docs/development.md.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from tools.repro_lint.concurrency import model as _cmodel
from tools.repro_lint.core import Violation, iter_source_files
from tools.repro_lint.determinism.model import (
    CANONICALIZERS,
    DetEnv,
    VIEW_METHODS,
    call_head,
    dotted_name,
    iter_analyzable_functions,
)

RULE = "iterorder"

#: Builtin call heads that materialise their argument's order.
_SEQUENCE_SINKS = frozenset({"list", "tuple", "enumerate"})

#: numpy sort entry points with a ``kind`` parameter (lexsort excluded:
#: it is always stable).
_NUMPY_UNSTABLE_SORTS = frozenset({"sort", "argsort"})


def _violation(func: _cmodel.FuncInfo, line: int, message: str) -> Violation:
    return Violation(rule=RULE, path=func.path, line=line, message=message)


class _Checker:
    """Source-order walk of one function emitting iterorder violations."""

    def __init__(self, model: _cmodel.RepoModel, func: _cmodel.FuncInfo) -> None:
        self.model = model
        self.func = func
        self.env = DetEnv(model, func)
        self.out: list[Violation] = []
        imports = model.module_imports.get(func.module, {})
        self.numpy_aliases = {
            name for name, target in imports.items() if target == "numpy"
        }

    # -- helpers -------------------------------------------------------

    def _numpy_module(self, expr: ast.expr) -> bool:
        return isinstance(expr, ast.Name) and (
            expr.id in self.numpy_aliases or expr.id == "np"
        )

    def _unordered(self, expr: ast.expr) -> str | None:
        return self.env.is_unordered(expr)

    def _flag_sink(self, expr: ast.expr, line: int, sink: str) -> None:
        reason = self._unordered(expr)
        if reason is not None:
            self.out.append(
                _violation(
                    self.func,
                    line,
                    f"{sink} materialises the order of {reason} — pass it "
                    "through a canonicalizer (sorted/canonicalize/json_safe) "
                    "or waive with the order-insensitivity argument "
                    "(see docs/development.md)",
                )
            )
        elif isinstance(expr, ast.GeneratorExp):
            self._flag_comprehension(expr, sink)

    def _flag_comprehension(self, comp: ast.expr, sink: str) -> None:
        for gen in getattr(comp, "generators", []):
            reason = self._unordered(gen.iter)
            if reason is not None:
                self.out.append(
                    _violation(
                        self.func,
                        gen.iter.lineno,
                        f"{sink} iterates {reason} — canonicalize the "
                        "iterable (sorted/...) or waive with rationale "
                        "(see docs/development.md)",
                    )
                )

    def _key_uses_hash(self, key: ast.expr) -> str | None:
        if isinstance(key, ast.Name) and key.id in ("hash", "id"):
            return key.id
        if isinstance(key, ast.Lambda):
            for node in ast.walk(key.body):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("hash", "id")
                ):
                    return node.func.id
        return None

    # -- traversal -----------------------------------------------------

    def run(self) -> list[Violation]:
        for stmt in self.func.node.body:
            self._visit_stmt(stmt)
        return self.out

    def _visit_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested functions are registered by the concurrency walk and
            # visited as their own top-level entries would be; walk the
            # body here with the enclosing env unavailable (fresh env).
            sub = self.model.functions.get(
                f"{self.func.key}.<locals>.{node.name}"
            )
            if sub is not None:
                self.out.extend(_Checker(self.model, sub).run())
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if node.value is not None:
                self._check_view_escape(node)
                self._visit_expr(node.value)
            self.env.bind(node)
            return
        if isinstance(node, ast.AugAssign):
            self._visit_expr(node.value)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self._check_view_return(node.value)
                self._visit_expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.stmt):
                self._visit_stmt(child)

    def _check_view_escape(self, node: ast.Assign | ast.AnnAssign) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in VIEW_METHODS
            and self.env.dtype_of(value) == "dictview"
        ):
            self.out.append(
                _violation(
                    self.func,
                    value.lineno,
                    f"dict view .{value.func.attr}() bound to a name — an "
                    "aliased view hides order-sensitivity from per-site "
                    "analysis; test membership on the dict itself or "
                    "canonicalize at the use site",
                )
            )

    def _check_view_return(self, value: ast.expr) -> None:
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in VIEW_METHODS
            and self.env.dtype_of(value) == "dictview"
        ):
            self.out.append(
                _violation(
                    self.func,
                    value.lineno,
                    f"dict view .{value.func.attr}() returned to the caller "
                    "— return a canonicalized list (sorted) or the dict",
                )
            )

    def _visit_expr(self, node: ast.expr) -> None:
        for current in ast.walk(node):
            if isinstance(current, ast.ListComp):
                self._flag_comprehension(current, "a list comprehension")
            elif isinstance(current, (ast.List, ast.Tuple)):
                for element in current.elts:
                    if isinstance(element, ast.Starred):
                        self._flag_sink(
                            element.value, element.lineno, "starred unpacking"
                        )
            elif isinstance(current, ast.Call):
                self._visit_call(current)

    def _visit_call(self, call: ast.Call) -> None:
        head = call_head(call)
        fn = call.func
        # list(x) / tuple(x) / enumerate(x) over an unordered iterable.
        if (
            isinstance(fn, ast.Name)
            and head in _SEQUENCE_SINKS
            and call.args
        ):
            self._flag_sink(call.args[0], call.lineno, f"{head}()")
        # sep.join(x)
        if isinstance(fn, ast.Attribute) and head == "join" and call.args:
            self._flag_sink(call.args[0], call.lineno, ".join()")
        # seq.extend(x)
        if isinstance(fn, ast.Attribute) and head == "extend" and call.args:
            self._flag_sink(call.args[0], call.lineno, ".extend()")
        # f(*x) with x unordered (skip set/frozenset/dict constructors).
        if head not in CANONICALIZERS:
            for arg in call.args:
                if isinstance(arg, ast.Starred):
                    self._flag_sink(arg.value, arg.lineno, "starred unpacking")
        # sorted(x, key=...) over unordered input: stable ties keep hash
        # order. sorted(x) without key is a total order — canonical.
        if head in ("sorted",) or (
            isinstance(fn, ast.Attribute) and head == "sort"
        ):
            key_kw = next((kw for kw in call.keywords if kw.arg == "key"), None)
            if key_kw is not None:
                hashy = self._key_uses_hash(key_kw.value)
                if hashy is not None:
                    self.out.append(
                        _violation(
                            self.func,
                            call.lineno,
                            f"{hashy}() used as a sort key — hash order "
                            "varies per process/PYTHONHASHSEED; sort on the "
                            "value itself",
                        )
                    )
                elif head == "sorted" and call.args:
                    reason = self._unordered(call.args[0])
                    if reason is not None:
                        self.out.append(
                            _violation(
                                self.func,
                                call.lineno,
                                f"sorted(key=...) over {reason} — stable "
                                "ties fall back to hash order; sort the "
                                "full value or break ties explicitly",
                            )
                        )
        if head in ("min", "max"):
            key_kw = next((kw for kw in call.keywords if kw.arg == "key"), None)
            if key_kw is not None:
                hashy = self._key_uses_hash(key_kw.value)
                if hashy is not None:
                    self.out.append(
                        _violation(
                            self.func,
                            call.lineno,
                            f"{hashy}() used as a {head}() key — hash order "
                            "varies per process/PYTHONHASHSEED",
                        )
                    )
        # np.sort / np.argsort / x.argsort() without kind="stable".
        self._check_numpy_sort(call, head)
        # s.pop() on a set: arbitrary-element selection.
        if (
            isinstance(fn, ast.Attribute)
            and head == "pop"
            and not call.args
            and not call.keywords
            and self.env.dtype_of(fn.value) == "set"
        ):
            self.out.append(
                _violation(
                    self.func,
                    call.lineno,
                    "set.pop() removes an arbitrary (hash-ordered) element "
                    "— pick deterministically (min/max or sorted)",
                )
            )

    def _check_numpy_sort(self, call: ast.Call, head: str | None) -> None:
        fn = call.func
        is_np_sort = (
            isinstance(fn, ast.Attribute)
            and head in _NUMPY_UNSTABLE_SORTS
            and self._numpy_module(fn.value)
        )
        is_method_argsort = (
            isinstance(fn, ast.Attribute)
            and head == "argsort"
            and not self._numpy_module(fn.value)
        )
        if not (is_np_sort or is_method_argsort):
            return
        kind = next((kw for kw in call.keywords if kw.arg == "kind"), None)
        stable = (
            kind is not None
            and isinstance(kind.value, ast.Constant)
            and kind.value.value == "stable"
        )
        if not stable:
            name = dotted_name(fn) or f".{head}"
            self.out.append(
                _violation(
                    self.func,
                    call.lineno,
                    f"{name}() without kind=\"stable\" — tie order is "
                    "implementation-defined and flows into ordered output; "
                    "pass kind=\"stable\" (np.lexsort is always stable)",
                )
            )


def _violations(model: _cmodel.RepoModel) -> Iterator[Violation]:
    seen: set[tuple[str, int, str]] = set()
    for func in iter_analyzable_functions(model):
        for violation in _Checker(model, func).run():
            key = (violation.path, violation.line, violation.message)
            if key not in seen:
                seen.add(key)
                yield violation


def check_iterorder_files(files: Sequence[Path]) -> list[Violation]:
    """Run the check over an explicit file list (fixture mode)."""
    model = _cmodel.build_model(list(files))
    return list(_violations(model))


def check_iterorder(root: Path | None = None) -> Iterable[Violation]:
    """Project rule: iteration-order discipline over ``src/repro``."""
    return check_iterorder_files(list(iter_source_files(root)))
