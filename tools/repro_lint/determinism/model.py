"""Ordering/provenance typing shared by the determinism rules.

The concurrency :class:`~tools.repro_lint.concurrency.model.RepoModel`
resolves *which* function a call dispatches to, but its type lattice
deliberately collapses every container onto ``("seq", elem)`` — good
enough for lock discovery, blind to the property the determinism rules
care about: **whether a value's iteration order is defined**. This
module adds that second lattice on top of the same model:

``"set"``
    ``set``/``frozenset`` values: iteration order is a function of the
    hash table's history (and, for str/bytes elements, of
    ``PYTHONHASHSEED``). Materialising it into a sequence is only
    deterministic after a canonicalizer.

``"dictview"``
    ``.keys()`` / ``.values()`` / ``.items()`` views: ordered by dict
    insertion, which is deterministic only when every insertion path
    is — an argument the analyzer cannot make locally, so ordered sinks
    require either a canonicalizer or an explicit waiver.

``("dict", value)`` / ``("seq", elem)``
    Order-carrying containers; subscripting propagates the inner
    determinism type.

Types are read off raw AST annotations (the ``annotations`` rule keeps
``src/repro`` fully annotated, same leverage as the concurrency model),
syntactic constructors (set literals/comprehensions, ``set()``,
view-producing method calls, set-algebra operators) and, through the
shared :class:`~tools.repro_lint.concurrency.model._TypeEnv`, class
attribute annotations and resolved call return annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.concurrency import model as _cmodel

#: Determinism type: "set" | "dictview" | ("dict", DType) | ("seq", DType) | None
DType = object

#: Annotation heads that denote hash-ordered (set-like) containers.
SET_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet", "KeysView"}
)
#: Annotation heads that denote mappings (whose views are flagged).
DICT_NAMES = frozenset(
    {
        "dict",
        "Dict",
        "OrderedDict",
        "defaultdict",
        "Mapping",
        "MutableMapping",
        "Counter",
    }
)
#: Annotation heads for order-carrying sequences.
SEQ_NAMES = frozenset(
    {"list", "List", "tuple", "Tuple", "Sequence", "deque", "Iterable", "Iterator"}
)

#: Methods on a set-typed receiver that return another set.
SET_METHODS = frozenset(
    {
        "intersection",
        "union",
        "difference",
        "symmetric_difference",
        "copy",
    }
)

#: Call heads whose result is order-canonical regardless of input:
#: full-comparison sorts, the repository's lex helpers, order-insensitive
#: aggregates and re-keyed containers. ``sorted`` with a ``key=`` is the
#: one exception the ``iterorder`` rule re-checks (stable ties fall back
#: to input order).
CANONICALIZERS = frozenset(
    {
        "sorted",
        "canonicalize",
        "sorted_cliques",
        "json_safe",
        "min",
        "max",
        "sum",
        "len",
        "set",
        "frozenset",
        "lexsort",
    }
)

#: Dict-view producing method names.
VIEW_METHODS = frozenset({"keys", "values", "items"})


def ann_dtype(node: ast.expr | None) -> DType:
    """Determinism type of a raw annotation expression (or ``None``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return ann_dtype(parsed)
    if isinstance(node, ast.Name):
        return _head_dtype(node.id)
    if isinstance(node, ast.Attribute):
        return _head_dtype(node.attr)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = ann_dtype(node.left)
        if left is not None:
            return left
        return ann_dtype(node.right)
    if isinstance(node, ast.Subscript):
        base = node.value
        head: str | None = None
        if isinstance(base, ast.Name):
            head = base.id
        elif isinstance(base, ast.Attribute):
            head = base.attr
        if head == "Optional":
            return ann_dtype(node.slice)
        args: list[ast.expr]
        if isinstance(node.slice, ast.Tuple):
            args = list(node.slice.elts)
        else:
            args = [node.slice]
        if head in SET_NAMES:
            return "set"
        if head in DICT_NAMES and len(args) >= 2:
            return ("dict", ann_dtype(args[1]))
        if head in SEQ_NAMES and args:
            return ("seq", ann_dtype(args[0]))
        return None
    return None


def _head_dtype(name: str) -> DType:
    if name in SET_NAMES:
        return "set"
    if name in DICT_NAMES:
        return ("dict", None)
    if name in SEQ_NAMES:
        return ("seq", None)
    return None


def _class_attr_dtypes(cls: _cmodel.ClassInfo) -> dict[str, DType]:
    """Raw-annotation determinism types of a class's attributes (cached)."""
    cache = getattr(cls, "_det_attr_dtypes", None)
    if cache is not None:
        return cache
    out: dict[str, DType] = {}
    for node in cls.node.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ref = ann_dtype(node.annotation)
            if ref is not None:
                out.setdefault(node.target.id, ref)
    init = cls.methods.get("__init__")
    if init is not None:
        for node in ast.walk(init.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            ref = ann_dtype(annotation) if annotation is not None else None
            if ref is None and value is not None:
                ref = syntactic_dtype(value)
            if ref is not None:
                out.setdefault(target.attr, ref)
    cls._det_attr_dtypes = out  # type: ignore[attr-defined]
    return out


def syntactic_dtype(expr: ast.expr) -> DType:
    """Determinism type readable off the expression's own shape."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return ("dict", None)
    if isinstance(expr, (ast.List, ast.ListComp, ast.Tuple, ast.GeneratorExp)):
        return ("seq", None)
    if isinstance(expr, ast.Call):
        fn = expr.func
        if isinstance(fn, ast.Name):
            if fn.id in ("set", "frozenset"):
                return "set"
            if fn.id in ("dict", "defaultdict", "OrderedDict", "Counter"):
                return ("dict", None)
            if fn.id in ("list", "tuple", "sorted"):
                return ("seq", None)
    return None


class DetEnv:
    """Per-function determinism-type environment over the shared model."""

    def __init__(self, model: _cmodel.RepoModel, func: _cmodel.FuncInfo) -> None:
        self.model = model
        self.func = func
        self.typeenv = _cmodel._TypeEnv(model, func)
        self.dtypes: dict[str, DType] = {}
        args = func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ref = ann_dtype(arg.annotation)
            if ref is not None:
                self.dtypes[arg.arg] = ref

    def bind(self, node: ast.stmt) -> None:
        """Record assignment targets' determinism types, in source order."""
        if isinstance(node, ast.Assign):
            ref = self.dtype_of(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if ref is not None:
                        self.dtypes[target.id] = ref
                    else:
                        self.dtypes.pop(target.id, None)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ref = ann_dtype(node.annotation)
            if ref is None and node.value is not None:
                ref = self.dtype_of(node.value)
            if ref is not None:
                self.dtypes[node.target.id] = ref

    def dtype_of(self, expr: ast.expr) -> DType:
        """Best-effort determinism type of an expression."""
        direct = syntactic_dtype(expr)
        if direct is not None:
            return direct
        if isinstance(expr, ast.Name):
            return self.dtypes.get(expr.id)
        if isinstance(expr, ast.IfExp):
            return self.dtype_of(expr.body) or self.dtype_of(expr.orelse)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            for side in (expr.left, expr.right):
                if self.dtype_of(side) in ("set", "dictview"):
                    return "set"
            return None
        if isinstance(expr, ast.Attribute):
            cls = self.typeenv.class_of(self.typeenv.resolve_type(expr.value))
            if cls is not None:
                ref = _class_attr_dtypes(cls).get(expr.attr)
                if ref is not None:
                    return ref
            return None
        if isinstance(expr, ast.Subscript):
            base = self.dtype_of(expr.value)
            if isinstance(base, tuple) and base[0] in ("dict", "seq"):
                return base[1]
            return None
        if isinstance(expr, ast.Call):
            fn = expr.func
            if isinstance(fn, ast.Attribute):
                if fn.attr in VIEW_METHODS:
                    receiver = self.dtype_of(fn.value)
                    if receiver is None or (
                        isinstance(receiver, tuple) and receiver[0] == "dict"
                    ):
                        return "dictview"
                    return None
                if fn.attr in SET_METHODS:
                    if self.dtype_of(fn.value) in ("set", "dictview"):
                        return "set"
                    return None
            for target in self.typeenv.resolve_call(expr):
                info = self.model.functions.get(target)
                if info is None:
                    continue
                ref = ann_dtype(info.node.returns)
                if ref is not None:
                    return ref
            return None
        return None

    def is_unordered(self, expr: ast.expr) -> str | None:
        """Why iterating ``expr`` has no defined order, or ``None``.

        Canonicalizer calls are exempt by construction: ``sorted(x)``
        and friends type as sequences, never as ``set``/``dictview``.
        """
        ref = self.dtype_of(expr)
        if ref == "set":
            return "a set/frozenset (hash-ordered iteration)"
        if ref == "dictview":
            return "a dict view (order rests on every insertion path)"
        return None


def iter_analyzable_functions(
    model: _cmodel.RepoModel,
) -> Iterator[_cmodel.FuncInfo]:
    """Top-level functions and methods (nested defs walked in place)."""
    for func in model.functions.values():
        if func.parent is None:
            yield func


def call_head(call: ast.Call) -> str | None:
    """The called name: ``f`` for ``f(...)``, ``m`` for ``x.m(...)``."""
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` rendered as a dotted string when purely attribute/name."""
    parts: list[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
