"""``rngflow``: every RNG construction must trace its seed to the caller.

The bench harness derives all stochastic inputs from the canonical seed
table (``repro.bench.workloads.SEEDS`` via ``seed_for``/``stream_seed``),
and the equivalence suites replay solves expecting bit-identical output.
One unseeded ``default_rng()`` — or one call into numpy's legacy
global-state API, whose hidden ``RandomState`` is shared across the
process — breaks replay silently. This rule makes seed provenance a
static property:

* **RNG constructions** (``np.random.default_rng``, ``Generator``, the
  bit generators, ``random.Random``, ``SeedSequence``) must receive a
  seed argument that is *traceable*: an integer literal, a parameter or
  local derived from one, a ``SEEDS[...]`` subscript, or a call to a
  seed helper (``seed_for``/``stream_seed``/``int``/arithmetic over
  traceable values). A missing or literal-``None`` seed fails — push
  the default to the caller as ``seed: int | None = None`` only if the
  ``None`` branch never reaches a construction in ``src/repro``.
* **Legacy global-state API** — ``np.random.<fn>()`` for anything other
  than the constructor surface (``default_rng``/``Generator``/bit
  generators/``SeedSequence``) fails: module-level state is invisible
  to checkpoint/restore and to the process-parallel tier.
* **Stdlib module-level ``random.<fn>()``** fails for the same reason;
  construct a ``random.Random(seed)`` instance instead.
* **Ambient entropy** — ``os.urandom``, ``secrets.*``, ``uuid.uuid4``
  and ``time``-module reads *used as seeds* fail anywhere in
  ``src/repro``: entropy is never an acceptable seed for a component
  whose outputs the suites pin.
"""

from __future__ import annotations

import ast
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from tools.repro_lint.concurrency import model as _cmodel
from tools.repro_lint.core import Violation, iter_source_files
from tools.repro_lint.determinism.model import (
    call_head,
    dotted_name,
    iter_analyzable_functions,
)

RULE = "rngflow"

#: The seedable constructor surface of ``numpy.random`` — the only
#: attributes of the module the rule permits to be called.
_NP_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "SeedSequence",
        "BitGenerator",
        "RandomState",  # itself checked as a construction below
    }
)

#: Constructor heads that take a seed as their first argument.
_SEEDED_HEADS = frozenset(
    {
        "default_rng",
        "Random",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "SeedSequence",
    }
)

#: Call heads that launder a traceable value into another traceable one.
_SEED_HELPERS = frozenset({"seed_for", "stream_seed", "int", "abs", "hash_seed"})

#: Entropy sources that must not seed anything in ``src/repro``.
_ENTROPY_CALLS = frozenset(
    {
        "urandom",
        "uuid4",
        "uuid1",
        "token_bytes",
        "token_hex",
        "randbits",
        "getrandbits",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)

#: Modules whose attribute calls count as entropy (with any head above).
_ENTROPY_MODULES = frozenset({"os", "secrets", "uuid", "time"})


def _violation(func: _cmodel.FuncInfo, line: int, message: str) -> Violation:
    return Violation(rule=RULE, path=func.path, line=line, message=message)


def _module_target(imports: dict[str, str], expr: ast.expr) -> str | None:
    """Resolve ``expr`` to an imported module path (``numpy.random``)."""
    name = dotted_name(expr)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    target = imports.get(head, head)
    return f"{target}.{rest}" if rest else target


class _Checker:
    def __init__(self, model: _cmodel.RepoModel, func: _cmodel.FuncInfo) -> None:
        self.model = model
        self.func = func
        self.imports = model.module_imports.get(func.module, {})
        #: Locals whose value came from an entropy call.
        self.entropy_locals: set[str] = set()
        #: Locals assigned from a traceable expression.
        self.traceable_locals: set[str] = set()
        args = func.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            self.traceable_locals.add(arg.arg)
        self.out: list[Violation] = []

    def _is_entropy(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.entropy_locals
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            head = expr.func.attr
            module = _module_target(self.imports, expr.func.value)
            return head in _ENTROPY_CALLS and (
                module in _ENTROPY_MODULES or module == "time"
            )
        return False

    def _traceable(self, expr: ast.expr) -> bool:
        """Is ``expr`` derived from a caller-supplied / canonical seed?"""
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, int) and not isinstance(
                expr.value, bool
            )
        if isinstance(expr, ast.Name):
            return (
                expr.id in self.traceable_locals
                and expr.id not in self.entropy_locals
            )
        if isinstance(expr, ast.Attribute):
            # self.seed / config.seed style provenance: accept attribute
            # reads — the attribute's own initialisation is checked where
            # it is assigned.
            return not self._is_entropy(expr)
        if isinstance(expr, ast.Subscript):
            # SEEDS["lp"] and friends: any subscript of a non-entropy
            # base is provenance-carrying data.
            return self._traceable_base(expr.value)
        if isinstance(expr, ast.BinOp):
            return self._traceable(expr.left) and self._traceable(expr.right)
        if isinstance(expr, ast.Call):
            if self._is_entropy(expr):
                return False
            head = call_head(expr)
            if head in _SEED_HELPERS:
                return all(self._traceable(a) for a in expr.args)
            if head == "SeedSequence":
                return all(self._traceable(a) for a in expr.args)
            return False
        if isinstance(expr, ast.IfExp):
            return self._traceable(expr.body) and self._traceable(expr.orelse)
        return False

    def _traceable_base(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id not in self.entropy_locals
        if isinstance(expr, ast.Attribute):
            return True
        return False

    def run(self) -> list[Violation]:
        # Own-scope breadth-first walk (source order within each level):
        # nested defs are analyzed as their own FuncInfo entries with
        # their own parameter scope, so don't descend into them.
        queue: deque[ast.AST] = deque(ast.iter_child_nodes(self.func.node))
        while queue:
            node = queue.popleft()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, ast.Assign):
                self._bind(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind([node.target], node.value)
            elif isinstance(node, ast.Call):
                self._check_call(node)
            queue.extend(ast.iter_child_nodes(node))
        return self.out

    def _bind(self, targets: list[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if self._is_entropy(value):
                self.entropy_locals.add(target.id)
                self.traceable_locals.discard(target.id)
            elif self._traceable(value):
                self.traceable_locals.add(target.id)
                self.entropy_locals.discard(target.id)

    def _check_call(self, call: ast.Call) -> None:
        head = call_head(call)
        fn = call.func
        module = (
            _module_target(self.imports, fn.value)
            if isinstance(fn, ast.Attribute)
            else None
        )
        # Legacy numpy global-state API: np.random.shuffle, np.random.rand...
        if module == "numpy.random" and head not in _NP_CONSTRUCTORS:
            self.out.append(
                _violation(
                    self.func,
                    call.lineno,
                    f"legacy global-state numpy.random.{head}() — hidden "
                    "module state breaks replay and checkpoint/restore; "
                    "construct np.random.default_rng(seed) and thread it",
                )
            )
            return
        # Stdlib module-level random.<fn>(): same hidden state.
        if module == "random" and head != "Random":
            self.out.append(
                _violation(
                    self.func,
                    call.lineno,
                    f"module-level random.{head}() uses the shared global "
                    "RNG — construct random.Random(seed) and thread it",
                )
            )
            return
        # RNG constructions must have a traceable seed.
        is_construction = head in _SEEDED_HEADS and (
            module in ("numpy.random", "random", None)
            or isinstance(fn, ast.Name)
        )
        if is_construction:
            seed: ast.expr | None = None
            if call.args:
                seed = call.args[0]
            else:
                kw = next(
                    (k for k in call.keywords if k.arg in ("seed", "x")), None
                )
                seed = kw.value if kw is not None else None
            if seed is None or (
                isinstance(seed, ast.Constant) and seed.value is None
            ):
                self.out.append(
                    _violation(
                        self.func,
                        call.lineno,
                        f"{head}() constructed without a seed — derive one "
                        "from the caller or repro.bench.workloads.SEEDS",
                    )
                )
            elif self._is_entropy(seed):
                self.out.append(
                    _violation(
                        self.func,
                        call.lineno,
                        f"{head}() seeded from ambient entropy — seeds must "
                        "trace to a caller-supplied value or SEEDS",
                    )
                )
            elif not self._traceable(seed):
                self.out.append(
                    _violation(
                        self.func,
                        call.lineno,
                        f"{head}() seed is not traceable to a caller-"
                        "supplied value, SEEDS, or a seed helper "
                        "(seed_for/stream_seed)",
                    )
                )


def _violations(model: _cmodel.RepoModel) -> Iterator[Violation]:
    seen: set[tuple[str, int, str]] = set()
    for func in iter_analyzable_functions(model):
        for violation in _Checker(model, func).run():
            key = (violation.path, violation.line, violation.message)
            if key not in seen:
                seen.add(key)
                yield violation
    # Nested functions are reachable from model.functions too; cover them
    # so fixture lambdas/closures don't dodge the rule.
    for func in model.functions.values():
        if func.parent is not None and ".<locals>." in func.key:
            for violation in _Checker(model, func).run():
                key = (violation.path, violation.line, violation.message)
                if key not in seen:
                    seen.add(key)
                    yield violation


def check_rngflow_files(files: Sequence[Path]) -> list[Violation]:
    """Run the check over an explicit file list (fixture mode)."""
    model = _cmodel.build_model(list(files))
    return list(_violations(model))


def check_rngflow(root: Path | None = None) -> Iterable[Violation]:
    """Project rule: RNG seed provenance over ``src/repro``."""
    return check_rngflow_files(list(iter_source_files(root)))
