# repro-lint-fixture-module: repro.core.fixture_ann_fail
"""Missing parameter and return annotations on public signatures."""


class Solver:
    def solve(self, nodes, k: int):
        return [k]


def free_function(a, **kwargs) -> int:
    return a
