# repro-lint-fixture-module: repro.core.fixture_ann_pass
"""Fully annotated signatures (the mypy --strict stand-in is happy)."""

from typing import Iterable


class Solver:
    def __init__(self, k: int) -> None:
        self.k = k

    def solve(self, nodes: Iterable[int], *extra: int, **options: object) -> list[int]:
        return [*nodes, *extra, self.k]

    @staticmethod
    def helper(x: int) -> int:
        return x


def free_function(a: int, b: str = "x") -> str:
    def nested_untyped_is_fine(z):
        return z

    return b * a
