"""Environment-derived values leaking into checkpoint payloads."""
# repro-lint-fixture-module: fixtures.envdep_checkpoint

import os
import time


class Engine:
    def __init__(self) -> None:
        self.ticks = 0

    def checkpoint(self) -> dict:
        return {
            "ticks": self.ticks,
            "workers": os.cpu_count(),
            "stamp": time.monotonic(),
        }
