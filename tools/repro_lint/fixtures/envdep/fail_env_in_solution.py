"""Environment-derived values flowing into solution construction."""
# repro-lint-fixture-module: fixtures.envdep_solution

import os


def _shard_width() -> int:
    return os.cpu_count() or 1


def build(groups: list[list[int]]) -> list[frozenset[int]]:
    cliques: list[frozenset[int]] = []
    width = _shard_width()
    for group in groups:
        cliques.append(frozenset(group[:width]))
    return cliques
