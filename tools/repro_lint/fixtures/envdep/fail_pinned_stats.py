"""Environment-derived values written to pinned stats counters."""
# repro-lint-fixture-module: fixtures.envdep_stats

import os
import time


def report() -> dict:
    stats: dict[str, int] = {}
    stats["nodes_expanded"] = int(time.perf_counter())
    stats["cache_hits"] = int(os.getenv("REPRO_HITS", "0"))
    return stats
