"""Environment reads steering scheduling knobs, never results."""
# repro-lint-fixture-module: fixtures.envdep_scheduling

import os
import time


def pick_workers(requested: int | None = None) -> int:
    if requested is not None:
        return requested
    return min(os.cpu_count() or 1, 8)


def chunked(items: list[int], requested: int | None = None) -> list[list[int]]:
    workers = pick_workers(requested)
    size = max(1, len(items) // workers)
    return [items[i : i + size] for i in range(0, len(items), size)]


def run_with_budget(budget: float) -> dict:
    stats: dict[str, float] = {}
    started = time.monotonic()
    deadline = started + budget
    while time.monotonic() < deadline:
        break
    # Wall-clock totals are the one stats key the suites do not pin.
    stats["seconds_total"] = time.monotonic() - started
    return stats


def debug_enabled() -> bool:
    return os.getenv("REPRO_DEBUG", "") == "1"
