"""A user callback invoked while the notifier lock is held: re-entrancy."""
# repro-lint-fixture-module: fixtures.holdcalling_callback

import threading


class Notifier:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._callbacks: list = []

    def fire(self, payload: int) -> None:
        with self._lock:
            for callback in self._callbacks:
                callback(payload)
