"""Stream I/O under a held lock stalls every thread queued behind it."""
# repro-lint-fixture-module: fixtures.holdcalling_io

import threading


class Logger:
    def __init__(self, stream) -> None:
        self._lock = threading.Lock()
        self.stream = stream

    def log(self, line: str) -> None:
        with self._lock:
            self.stream.write(line)
