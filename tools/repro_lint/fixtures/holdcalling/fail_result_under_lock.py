"""Blocking on a ticket while holding an unrelated lock: a convoy."""
# repro-lint-fixture-module: fixtures.holdcalling_result

import threading


class Waiter:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def collect(self, ticket) -> object:
        with self._lock:
            return ticket.result()
