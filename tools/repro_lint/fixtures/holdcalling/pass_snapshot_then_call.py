"""The discipline the rule wants: snapshot under the lock, act outside."""
# repro-lint-fixture-module: fixtures.holdcalling_snapshot

import threading
from typing import Callable


class Notifier:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._callbacks: list = []

    def subscribe(self, callback: Callable[[int], None]) -> None:
        with self._lock:
            self._callbacks.append(callback)

    def fire(self, payload: int) -> None:
        with self._lock:
            snapshot = list(self._callbacks)
        for callback in snapshot:
            callback(payload)
