"""Dict views escaping or feeding ordered sinks."""
# repro-lint-fixture-module: fixtures.iterorder_dictview_sinks


def aliased_view(index: dict[int, int]) -> int:
    keep = index.keys()
    count = 0
    for u in keep:
        count += u
    return count


def view_to_list(owners: dict[int, frozenset[int]]) -> list[frozenset[int]]:
    return list(owners.values())


def view_enumerated(counts: dict[str, int]) -> list[tuple[int, str]]:
    return [(i, key) for i, key in enumerate(counts.keys())]


def view_extend(queue: list[int], waiting: dict[int, str]) -> None:
    queue.extend(waiting.keys())
