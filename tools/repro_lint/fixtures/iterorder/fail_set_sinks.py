"""Set/frozenset order materialised into sequences without canonicalizing."""
# repro-lint-fixture-module: fixtures.iterorder_set_sinks


def raw_listing(nodes: set[int]) -> list[int]:
    return list(nodes)


def raw_comprehension(nodes: frozenset[int]) -> list[int]:
    return [u * 2 for u in nodes]


def raw_join(parts: set[str]) -> str:
    return ",".join(parts)


def raw_unpack(nodes: set[int]) -> tuple[int, ...]:
    return (*nodes, -1)


def arbitrary_pop(pending: set[int]) -> int:
    return pending.pop()
