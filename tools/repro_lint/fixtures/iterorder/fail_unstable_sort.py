"""Unstable numpy sorts and hash-dependent sort keys."""
# repro-lint-fixture-module: fixtures.iterorder_unstable_sort

import numpy as np


def default_argsort(scores: np.ndarray) -> np.ndarray:
    return np.argsort(scores)


def quicksort_values(scores: np.ndarray) -> np.ndarray:
    return np.sort(scores, kind="quicksort")


def hash_keyed(cliques: list[frozenset[int]]) -> list[frozenset[int]]:
    return sorted(cliques, key=hash)


def id_keyed_min(tasks: list[object]) -> object:
    return min(tasks, key=lambda t: id(t))


def keyed_over_set(nodes: set[int]) -> list[int]:
    # key= drops information: equal keys keep hash iteration order.
    return sorted(nodes, key=lambda u: u % 4)
