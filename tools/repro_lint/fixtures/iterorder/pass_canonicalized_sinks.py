"""Unordered values reaching ordered sinks only through canonicalizers."""
# repro-lint-fixture-module: fixtures.iterorder_canonicalized

import numpy as np


def listing(nodes: set[int]) -> list[int]:
    return sorted(nodes)


def label(parts: frozenset[str]) -> str:
    return ",".join(sorted(parts))


def ranks(scores: np.ndarray) -> np.ndarray:
    return np.argsort(scores, kind="stable")


def totals(counts: dict[str, int]) -> int:
    # Statement for-loops and order-insensitive aggregates are not sinks.
    total = 0
    for value in counts.values():
        total += value
    return total + sum(counts.values()) + max(counts.values())


def membership(index: dict[int, int], nodes: list[int]) -> list[int]:
    # Membership tests on the dict itself, not an aliased view.
    return [u for u in nodes if u in index]


def rekeyed(counts: dict[str, int]) -> dict[str, int]:
    # dict -> dict transforms preserve insertion order: not a sink.
    return {key: value * 2 for key, value in counts.items()}
