# repro-lint-fixture-module: repro.bench.fixture_manifest_fail
"""Numpy values leaking into bench manifest/summary emission."""

import numpy as np


def build_manifest(run_id: str, seconds: np.ndarray) -> dict:
    return {
        "run_id": run_id,
        "seconds": seconds,
        "numpy": np.__version__,
    }


def build_summary(records: list, totals: np.ndarray) -> dict:
    return {
        "stats": {"seconds_total": totals},
    }
