# repro-lint-fixture-module: repro.core.fixture_json_fail
"""Numpy values and unwrapped asdict reaching JSON sinks."""

import json
from dataclasses import asdict

import numpy as np


class Task:
    def __init__(self, order: np.ndarray, options: object) -> None:
        self.order: np.ndarray = order
        self.options = options

    def checkpoint(self) -> dict:
        return {
            "order": self.order,
            "options": asdict(self.options),
        }

    def wire(self) -> str:
        return json.dumps({"mean": np.mean(self.order)})
