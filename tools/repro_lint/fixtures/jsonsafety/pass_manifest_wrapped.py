# repro-lint-fixture-module: repro.bench.fixture_manifest_pass
"""Bench manifest/summary emission with safe coercers throughout."""

import numpy as np

from repro.jsonsafe import json_safe


def build_manifest(run_id: str, seconds: np.ndarray) -> dict:
    return {
        "run_id": str(run_id),
        "seconds": seconds.tolist(),
        "numpy": str(np.__version__),
    }


def build_summary(records: list, totals: np.ndarray) -> dict:
    return {
        "stats": {"seconds_total": round(float(np.sum(totals)), 6)},
        "records": json_safe(records),
    }
