# repro-lint-fixture-module: repro.core.fixture_json_pass
"""JSON boundaries using safe coercers throughout."""

import json
from dataclasses import asdict

import numpy as np

from repro.jsonsafe import json_safe


class Task:
    def __init__(self, order: np.ndarray, options: object) -> None:
        self.order: np.ndarray = order
        self.options = options
        self.count = np.int64(0)

    def checkpoint(self) -> dict:
        return {
            "order": self.order.tolist(),
            "count": int(self.count),
            "options": json_safe(asdict(self.options)),
        }

    def wire(self) -> str:
        return json.dumps(json_safe({"order": self.order}))
