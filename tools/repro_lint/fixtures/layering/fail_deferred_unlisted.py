# repro-lint-fixture-module: repro.cliques.fixture_fail
"""Deferred upward import NOT on the allowlist: still a violation."""


def sneaky() -> object:
    from repro.serve.server import Server

    return Server
