# repro-lint-fixture-module: repro.graph.fixture_fail
"""Module-level upward import: graph(10) may not depend on core(30)."""

from repro.core.session import Session


def bad() -> type:
    return Session
