# repro-lint-fixture-module: repro.core.session
"""Deferred upward import on the DEFERRED_OK allowlist: sanctioned."""


def dynamic(self, k: int) -> object:
    from repro.dynamic.maintainer import DynamicDisjointCliques

    return DynamicDisjointCliques
