# repro-lint-fixture-module: repro.core.fixture_pass
"""Core importing strictly lower layers: always allowed."""

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.cliques.listing import iter_cliques


def use(graph: Graph) -> int:
    if graph.n < 0:
        raise InvalidParameterError("negative n")
    return sum(1 for _ in iter_cliques(graph, 3))
