# repro-lint-fixture-module: repro.graph.fixture_pass
"""Annotation-only upward reference: no runtime edge, allowed."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.dynamic.maintainer import DynamicDisjointCliques


def describe(maintainer: "DynamicDisjointCliques") -> str:
    return repr(maintainer)
