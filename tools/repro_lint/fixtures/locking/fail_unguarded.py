# repro-lint-fixture-module: repro.core.fixture_lock_fail
"""Unguarded memo write in a lock-owning class: the race this rule exists for."""

import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._memo: dict | None = None

    def get(self) -> dict:
        if self._memo is None:
            self._memo = {"built": True}
        return self._memo
