# repro-lint-fixture-module: repro.core.fixture_lock_pass
"""Lock-guarded memo: every write happens under the owner's lock."""

import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._memo: dict | None = None
        self._hits = 0

    def get(self) -> dict:
        if self._memo is None:
            with self._lock:
                if self._memo is None:
                    self._memo = {"built": True}
        with self._lock:
            self._hits += 1
        return self._memo

    def tryget(self) -> dict | None:
        if not self._lock.acquire(blocking=False):
            return None
        try:
            self._hits += 1
            return self._memo
        finally:
            self._lock.release()
