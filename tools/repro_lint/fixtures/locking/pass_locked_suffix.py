# repro-lint-fixture-module: repro.serve.fixture_lock_pass
"""`*_locked` helpers assume the caller holds the lock: exempt."""

import threading


class Buffer:
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._pending: list = []

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        self._pending = []
