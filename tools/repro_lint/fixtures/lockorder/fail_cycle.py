"""A._lock -> B._lock via forward(), B._lock -> A._lock via backward()."""
# repro-lint-fixture-module: fixtures.lockorder_cycle

import threading


class A:
    def __init__(self, other: "B | None" = None) -> None:
        self._lock = threading.Lock()
        self.other = other

    def forward(self) -> None:
        with self._lock:
            if self.other is not None:
                self.other.backward()

    def leaf(self) -> int:
        with self._lock:
            return 1


class B:
    def __init__(self, other: A) -> None:
        self._lock = threading.Lock()
        self.other = other

    def backward(self) -> int:
        with self._lock:
            return self.other.leaf()
