"""Two lock sites acquired in one consistent order: no cycle."""
# repro-lint-fixture-module: fixtures.lockorder_hierarchy

import threading


class Inner:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def poke(self) -> int:
        with self._lock:
            return self.value


class Outer:
    def __init__(self, inner: Inner) -> None:
        self._lock = threading.Lock()
        self.inner = inner

    def poke(self) -> int:
        # Outer._lock -> Inner._lock, and never the reverse.
        with self._lock:
            return self.inner.poke()
