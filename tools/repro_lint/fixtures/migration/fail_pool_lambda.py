"""A lambda worker is unpicklable under the spawn start method."""
# repro-lint-fixture-module: fixtures.migration_pool_lambda


def run(pool, chunks: list) -> list:
    return pool.map(lambda chunk: len(chunk), chunks)
