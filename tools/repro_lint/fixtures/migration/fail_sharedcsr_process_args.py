"""A live SharedCSR handle must never cross a process boundary."""
# repro-lint-fixture-module: fixtures.migration_sharedcsr_process_args

import multiprocessing

from repro.parallel.shared_csr import SharedCSR


def _worker(handle: SharedCSR) -> int:
    return len(list(handle.names()))


def run(handle: SharedCSR) -> None:
    proc = multiprocessing.Process(target=_worker, args=(handle,))
    proc.start()
    proc.join()
