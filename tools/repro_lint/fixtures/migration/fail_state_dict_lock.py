"""A lock in a checkpoint payload: lock state is process-local."""
# repro-lint-fixture-module: fixtures.migration_state_dict_lock

import threading


class Engine:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ticks = 0

    def state_dict(self) -> dict:
        return {"ticks": self.ticks, "lock": self._lock}
