"""A module-level pool worker pickles under every start method."""
# repro-lint-fixture-module: fixtures.migration_pool_module_worker

import multiprocessing


def _worker(chunk: list) -> int:
    return len(chunk)


def run(chunks: list) -> list:
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=2) as pool:
        return pool.map(_worker, chunks)
