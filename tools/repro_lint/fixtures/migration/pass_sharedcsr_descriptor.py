"""The JSON-safe descriptor is what crosses; workers re-attach."""
# repro-lint-fixture-module: fixtures.migration_sharedcsr_descriptor

import multiprocessing

from repro.parallel.shared_csr import SharedCSR


def _worker(descriptor: dict) -> int:
    handle = SharedCSR.attach(descriptor)
    try:
        return len(list(handle.names()))
    finally:
        handle.close()


def run(handle: SharedCSR) -> None:
    proc = multiprocessing.Process(target=_worker, args=(handle.descriptor(),))
    proc.start()
    proc.join()
