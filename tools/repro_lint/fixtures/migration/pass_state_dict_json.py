"""A JSON-safe payload: scalars and derived values, never the substrate."""
# repro-lint-fixture-module: fixtures.migration_state_dict_json


class Engine:
    def __init__(self, graph: "Graph") -> None:
        self.graph = graph
        self.ticks = 0
        self.solution: list = []

    def state_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "n": self.graph.n,
            "solution": [sorted(c) for c in self.solution],
        }
