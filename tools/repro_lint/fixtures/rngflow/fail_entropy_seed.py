"""Ambient entropy used as a seed: never reproducible."""
# repro-lint-fixture-module: fixtures.rngflow_entropy

import os
import random
import time

import numpy as np


def wall_clock_seed() -> np.random.Generator:
    return np.random.default_rng(int(time.time()))


def urandom_seed() -> random.Random:
    noise = os.urandom(8)
    return random.Random(noise)
