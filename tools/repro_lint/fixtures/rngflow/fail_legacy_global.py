"""Legacy global-state RNG APIs: hidden state breaks checkpoint/replay."""
# repro-lint-fixture-module: fixtures.rngflow_legacy

import random

import numpy as np


def numpy_global_shuffle(items: list[int]) -> None:
    np.random.shuffle(items)


def numpy_global_draw(n: int) -> np.ndarray:
    return np.random.rand(n)


def stdlib_global_choice(items: list[int]) -> int:
    return random.choice(items)
