"""Unseeded RNG constructions: replay cannot reproduce them."""
# repro-lint-fixture-module: fixtures.rngflow_unseeded

import random

import numpy as np


def no_seed() -> np.random.Generator:
    return np.random.default_rng()


def explicit_none() -> np.random.Generator:
    return np.random.default_rng(None)


def stdlib_unseeded() -> random.Random:
    return random.Random()
