"""RNG constructions whose seeds trace to the caller or the SEEDS table."""
# repro-lint-fixture-module: fixtures.rngflow_traceable

import random

import numpy as np

SEEDS = {"workload": 1234}


def from_parameter(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def from_default(seed: int | None = None) -> np.random.Generator:
    return np.random.default_rng(seed)


def from_table(stream: str) -> np.random.Generator:
    return np.random.default_rng(SEEDS[stream])


def from_arithmetic(seed: int, shard: int) -> random.Random:
    return random.Random(seed * 1000003 + shard)


def from_helper(seed: int) -> np.random.Generator:
    derived = int(seed) + 17
    return np.random.default_rng(derived)


def literal_seed() -> np.random.Generator:
    return np.random.default_rng(42)
