# repro-lint-fixture-module: repro.core.fixture_stats_fail
"""A typo'd stats key: forks the counter instead of failing loudly."""


def record(stats: dict) -> None:
    stats["cache_hit"] = stats.get("cache_hit", 0) + 1
