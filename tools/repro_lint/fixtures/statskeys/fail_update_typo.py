# repro-lint-fixture-module: repro.bench.fixture_stats_update_fail
"""A typo'd counter smuggled in through ``stats.update({...})``."""


def summarize(stats: dict) -> None:
    stats.update({"suite_run": 1, "cells_ok": 2})
