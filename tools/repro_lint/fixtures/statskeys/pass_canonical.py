# repro-lint-fixture-module: repro.core.fixture_stats_pass
"""Stats access restricted to the canonical key vocabulary."""


def record(stats: dict) -> int:
    stats["cache_hits"] = stats.get("cache_hits", 0) + 1
    stats.setdefault("findmin_calls", 0)
    return stats["csr_builds"]


def build() -> dict:
    stats = {"orientations": 1, "score_passes": 2}
    return stats
