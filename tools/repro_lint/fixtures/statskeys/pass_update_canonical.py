# repro-lint-fixture-module: repro.bench.fixture_stats_update_pass
"""Runner summary counters merged via ``stats.update({...})``."""


def summarize(stats: dict) -> None:
    stats.update({
        "suites_run": 1,
        "cells_ok": 2,
        "cells_error": 0,
        "seconds_total": 1.5,
    })
