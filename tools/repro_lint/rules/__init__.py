"""Rule registry: maps rule names to their check callables.

File-scope rules take a :class:`tools.repro_lint.core.ModuleInfo`;
project-scope rules take the repository root. The runner (and the
fixture tests) look rules up here, so adding a rule means adding it to
one of the two dicts below plus a fixture pair under
``tools/repro_lint/fixtures/<rule>/``.
"""

from __future__ import annotations

from tools.repro_lint.concurrency import (
    check_holdcalling,
    check_lockorder,
    check_migration,
)
from tools.repro_lint.determinism import (
    check_envdep,
    check_iterorder,
    check_rngflow,
)
from tools.repro_lint.rules.annotations import check_annotations
from tools.repro_lint.rules.jsonsafety import check_jsonsafety
from tools.repro_lint.rules.layering import check_layering
from tools.repro_lint.rules.locking import check_locking
from tools.repro_lint.rules.registry_meta import check_registry
from tools.repro_lint.rules.stats_keys import check_stats_keys

#: Rules running per source file (AST based).
FILE_RULES = {
    "layering": check_layering,
    "locking": check_locking,
    "jsonsafety": check_jsonsafety,
    "statskeys": check_stats_keys,
    "annotations": check_annotations,
}

#: Rules running once per repository (runtime introspection or
#: whole-repo interprocedural analysis).
PROJECT_RULES = {
    "registry": check_registry,
    "lockorder": check_lockorder,
    "holdcalling": check_holdcalling,
    "migration": check_migration,
    "iterorder": check_iterorder,
    "rngflow": check_rngflow,
    "envdep": check_envdep,
}

ALL_RULES = tuple(FILE_RULES) + tuple(PROJECT_RULES)
