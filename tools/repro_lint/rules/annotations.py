"""Annotation completeness: every signature in ``src/repro`` is typed.

``mypy --strict`` is the real gate in CI, but mypy is an optional
external here (the development container does not ship it). This rule is
the always-available core of ``--disallow-untyped-defs`` /
``--disallow-incomplete-defs``: every function and method in the typed
package must annotate all parameters and its return type. It keeps the
repository honest between CI runs and gives the fixture corpus something
deterministic to assert against.

Conventions honoured:

* ``self`` and ``cls`` (first parameter of methods/classmethods) need no
  annotation;
* ``*args`` / ``**kwargs`` must be annotated like any parameter;
* ``__init__`` must annotate its return (``-> None``) — same as mypy
  strict;
* nested functions and lambdas inside an annotated function are skipped
  (mypy's ``--disallow-untyped-defs`` checks them, but local closures
  carry their types from context; the CI mypy job still covers them);
* only modules under the ``repro`` package are checked — tools, tests
  and benchmarks are typed at best effort.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import ModuleInfo, Violation

RULE = "annotations"

_IMPLICIT_FIRST = {"self", "cls"}


def _missing_parts(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, *, is_method: bool
) -> list[str]:
    """Names of unannotated parameters (plus ``return`` if missing)."""
    missing: list[str] = []
    args = fn.args
    ordered = args.posonlyargs + args.args
    for index, arg in enumerate(ordered):
        if (
            index == 0
            and is_method
            and arg.arg in _IMPLICIT_FIRST
        ):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if fn.returns is None:
        missing.append("return")
    return missing


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Yield top-level and class-body functions with an is_method flag.

    Walks module and class bodies only — functions nested inside other
    functions are intentionally not yielded (see module docstring).
    """
    def from_body(body: list[ast.stmt], *, in_class: bool) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]
    ]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, in_class
            elif isinstance(node, ast.ClassDef):
                yield from from_body(node.body, in_class=True)
            elif isinstance(node, (ast.If, ast.Try)):
                yield from from_body(node.body, in_class=in_class)

    yield from from_body(tree.body, in_class=False)


def _is_staticmethod(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in fn.decorator_list
    )


def check_annotations(module: ModuleInfo) -> Iterator[Violation]:
    """Flag functions in ``repro`` with incomplete type annotations."""
    if not module.name.startswith("repro"):
        return
    for fn, in_class in _iter_functions(module.tree):
        is_method = in_class and not _is_staticmethod(fn)
        missing = _missing_parts(fn, is_method=is_method)
        if not missing:
            continue
        yield Violation(
            rule=RULE,
            path=module.relpath,
            line=fn.lineno,
            message=(
                f"function {fn.name!r} has unannotated "
                f"{', '.join(missing)} — src/repro signatures must be "
                "fully typed (mypy --strict)"
            ),
        )
