"""Checkpoint/protocol JSON-safety: no numpy values may reach the wire.

Four structures in this repository are ``json.dumps``-bound by
contract: NDJSON protocol envelopes (:mod:`repro.serve.protocol`),
:meth:`repro.core.task.SolveTask.checkpoint` dicts, the engine
``state_dict`` payloads nested inside them, and the bench runner's
manifest/summary payloads (:func:`repro.bench.runner.build_manifest`
and :func:`repro.bench.runner.build_summary`, written to every
``results/<run-id>/`` directory). ``json.dumps`` raises
``TypeError`` on ``np.int64``/``np.ndarray`` — but only at serialisation
time, on whichever rarely-exercised path let the value through (the
defect this rule was built on: an ``hg`` task checkpoint with an
array-valued ``order`` option embedded the raw ``np.ndarray``).

Checks, all AST based:

* any argument expression of ``json.dumps`` / ``json.dump`` — and of
  this repo's wire encoder ``protocol.encode`` / ``encode`` — must not
  contain a *numpy-flavoured* subexpression: a direct ``np.*`` /
  ``numpy.*`` call or attribute, or a name/attribute whose annotation
  (collected from the module's own signature and attribute annotations)
  is a numpy type;
* inside functions named ``checkpoint`` / ``state_dict`` (the
  JSON-boundary functions), every ``dict`` literal is held to the same
  standard, and calls to ``dataclasses.asdict`` must be wrapped in
  ``json_safe(...)`` (:func:`repro.jsonsafe.json_safe`) because
  dataclass fields typed ``object`` can smuggle arrays past any static
  check.

Wrapping a suspect expression in a safe coercer — ``int()``,
``float()``, ``bool()``, ``str()``, ``list()``, ``sorted()``, ``len()``,
``min()``, ``max()``, ``json_safe()``, or a ``.tolist()`` / ``.item()``
method call — satisfies the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import ModuleInfo, Violation

RULE = "jsonsafety"

#: Function names whose dict literals are JSON-bound by contract:
#: task checkpoints, engine state dicts, and the bench runner's
#: manifest/summary emission (``results/<run-id>/*.json``).
BOUNDARY_FUNCTIONS = {
    "checkpoint",
    "state_dict",
    "build_manifest",
    "build_summary",
}

#: Calls that coerce their argument into JSON-safe values.
SAFE_CALLS = {
    "int",
    "float",
    "bool",
    "str",
    "list",
    "dict",
    "sorted",
    "len",
    "min",
    "max",
    "round",
    "sum",
    "json_safe",
}

#: Method calls producing JSON-safe values from numpy objects.
SAFE_METHODS = {"tolist", "item", "isoformat"}

#: Annotation substrings marking a numpy-typed symbol.
_NUMPY_MARKERS = (
    "np.ndarray",
    "numpy.ndarray",
    "NDArray",
    "np.int",
    "np.uint",
    "np.float",
    "np.bool_",
    "np.integer",
    "np.floating",
    "npt.",
)


def _is_numpy_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return any(marker in text for marker in _NUMPY_MARKERS)


def _collect_numpy_symbols(tree: ast.Module) -> set[str]:
    """Names and ``self.x`` attributes annotated as numpy types.

    Collected module-wide from parameter annotations, annotated
    assignments and class-level attribute annotations; the flagger
    treats any matching ``Name`` / ``self.<attr>`` as numpy-typed.
    """
    symbols: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if _is_numpy_annotation(arg.annotation):
                    symbols.add(arg.arg)
        elif isinstance(node, ast.AnnAssign) and _is_numpy_annotation(
            node.annotation
        ):
            target = node.target
            if isinstance(target, ast.Name):
                symbols.add(target.id)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                symbols.add(f"self.{target.attr}")
    return symbols


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_safe_wrapper(node: ast.Call) -> bool:
    name = _call_name(node)
    if name in SAFE_CALLS:
        return True
    return (
        isinstance(node.func, ast.Attribute) and node.func.attr in SAFE_METHODS
    )


def _numpy_reason(node: ast.expr, numpy_symbols: set[str]) -> str | None:
    """Why ``node`` itself looks numpy-flavoured (``None`` when clean)."""
    if isinstance(node, ast.Name) and node.id in numpy_symbols:
        return f"'{node.id}' is annotated as a numpy type"
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in ("np", "numpy"):
                return f"direct numpy expression 'np.{node.attr}'"
            if base.id == "self" and f"self.{node.attr}" in numpy_symbols:
                return f"'self.{node.attr}' is annotated as a numpy type"
    return None


def _flag_expression(
    node: ast.expr, numpy_symbols: set[str]
) -> Iterator[tuple[int, str]]:
    """Yield (line, reason) for numpy-flavoured subexpressions.

    Safe-coercer calls terminate the walk — whatever is inside them
    reaches JSON as a plain Python value.
    """
    if isinstance(node, ast.Call):
        if _is_safe_wrapper(node):
            return
        name = _call_name(node)
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
                yield node.lineno, f"call to numpy function 'np.{node.func.attr}'"
                return
        if name == "asdict":
            yield (
                node.lineno,
                "dataclasses.asdict payload must be wrapped in json_safe() "
                "(object-typed fields can carry numpy arrays)",
            )
            return
    reason = _numpy_reason(node, numpy_symbols)
    if reason is not None:
        yield node.lineno, reason
        return
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            yield from _flag_expression(child, numpy_symbols)
        elif isinstance(child, (ast.comprehension, ast.keyword)):
            for sub in ast.iter_child_nodes(child):
                if isinstance(sub, ast.expr):
                    yield from _flag_expression(sub, numpy_symbols)


def _iter_json_sinks(tree: ast.Module) -> Iterator[tuple[str, ast.expr]]:
    """Yield (sink description, expression) pairs to audit."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            is_dumps = name in ("dumps", "dump") and isinstance(
                node.func, ast.Attribute
            )
            is_encode = name == "encode" and (
                isinstance(node.func, ast.Name)
                or (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "protocol"
                )
            )
            if is_dumps or is_encode:
                for arg in node.args[:1]:
                    yield f"argument of {name}()", arg
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in BOUNDARY_FUNCTIONS
        ):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    for value in sub.values:
                        if value is not None:
                            yield f"dict value in {node.name}()", value


def check_jsonsafety(module: ModuleInfo) -> Iterator[Violation]:
    """Flag numpy-flavoured expressions reaching JSON-bound structures."""
    numpy_symbols = _collect_numpy_symbols(module.tree)
    seen: set[tuple[int, str]] = set()
    for sink, expression in _iter_json_sinks(module.tree):
        for line, reason in _flag_expression(expression, numpy_symbols):
            key = (line, reason)
            if key in seen:
                continue
            seen.add(key)
            yield Violation(
                rule=RULE,
                path=module.relpath,
                line=line,
                message=f"{sink} is not JSON-safe: {reason}",
            )
