"""Layering contract: the ``repro`` import DAG must stay acyclic.

The package layering, bottom to top (a module may import same-package
modules freely, and other packages only at strictly lower rank)::

    errors(0) -> graph(10) -> cliques/hypergraph/mis(20) -> core(30)
      -> matching/dynamic(40) -> analysis(50) -> repro(55, root re-exports)
      -> serve(60) -> bench(70) -> cli(80) -> __main__(90)

``jsonsafe`` sits at rank 0 (pure stdlib/numpy helpers importable from
anywhere). Module-level imports are enforced strictly: an upward (or
sideways cross-package) module-level import is a violation naming the
edge. Deferred imports — inside a function body — are the sanctioned
escape hatch for the few intentional upward edges (e.g.
``Session.dynamic`` constructing a maintainer) **but** each must be
allow-listed in :data:`DEFERRED_OK`; a new upward deferred import fails
until the edge is consciously admitted here.

Imports under ``if TYPE_CHECKING:`` are exempt: they exist only for
annotations and create no runtime edge, so an upward *type* reference
(e.g. ``graph`` annotating a ``DynamicGraph`` parameter) is fine —
it is exactly how a low layer should name a high-layer type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import ModuleInfo, Violation

RULE = "layering"

#: Package rank: imports must point strictly downward across packages.
LAYERS: dict[str, int] = {
    "errors": 0,
    "jsonsafe": 0,
    "concurrency": 0,  # lock factories; importable from anywhere
    "graph": 10,
    "cliques": 20,
    "hypergraph": 20,
    "mis": 20,
    "core": 30,
    "matching": 40,
    "dynamic": 40,
    "analysis": 50,
    "parallel": 52,  # process tier: wraps core engines over shared memory
    "repro": 55,  # the root package's own re-export surface
    "serve": 60,
    "bench": 70,
    "cli": 80,
    "__main__": 90,
}

#: Deferred (function-body) upward imports that are intentionally part
#: of the design: (importing module prefix, imported module prefix).
DEFERRED_OK: frozenset[tuple[str, str]] = frozenset(
    {
        # Session.dynamic / Session.task construct upward-layer objects on
        # demand; the type dependency stays inverted (maintainer depends
        # on core, not vice versa).
        ("repro.core.session", "repro.dynamic.maintainer"),
        # exact_optimum falls back to blossom matching for k=2.
        ("repro.core.exact", "repro.matching"),
        # result maximality checks enumerate residual cliques lazily.
        ("repro.core.result", "repro.cliques.listing"),
        # the lightweight engine fans HeapInit out through the process
        # tier on demand (workers > 1); the tier depends on core for
        # its engines, so the runtime edge must stay deferred.
        ("repro.core.lightweight", "repro.parallel.heapinit"),
    }
)


def _package_of(module: str) -> str:
    """Layer key for a dotted ``repro`` module name."""
    parts = module.split(".")
    if parts[0] != "repro":
        return parts[0]
    if len(parts) == 1:
        return "repro"
    return parts[1]


def _rank(module: str) -> int | None:
    """Layer rank, or ``None`` for modules outside the contract.

    A ``repro.*`` target whose second component is not a known package
    is a symbol imported from the root ``__init__`` (``from repro
    import Session``) or a package new to the contract; both rank as
    the root re-export surface, so low layers cannot quietly depend on
    them until :data:`LAYERS` is consciously extended.
    """
    pkg = _package_of(module)
    if pkg == "repro":
        return LAYERS["repro"]
    rank = LAYERS.get(pkg)
    if rank is None and module.startswith("repro."):
        return LAYERS["repro"]
    return rank


def _resolve_targets(node: ast.stmt, importer: str) -> Iterator[str]:
    """Dotted repro-module targets of one import statement.

    ``from repro import errors`` resolves to ``repro.errors`` (the
    bound name is a submodule, and that is the edge that matters);
    ``from repro.core import session`` likewise. Relative imports are
    resolved against the importing module.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                yield alias.name
        return
    if not isinstance(node, ast.ImportFrom):
        return
    base = node.module or ""
    if node.level:
        parts = importer.split(".")
        # level=1 from a module means its package; each extra level pops one.
        parts = parts[: len(parts) - node.level]
        base = ".".join(parts + ([base] if base else []))
    if not (base == "repro" or base.startswith("repro.")):
        return
    for alias in node.names:
        # `from repro import errors` imports the submodule repro.errors;
        # `from repro.errors import GraphError` imports a symbol. Either
        # way `base + "." + name` names the tightest plausible target —
        # rank lookup only uses the package part, so a symbol name after
        # the module is harmless.
        yield f"{base}.{alias.name}"


def _is_type_checking(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _iter_imports(
    tree: ast.Module,
) -> Iterator[tuple[ast.stmt, bool]]:
    """Yield every import statement with a ``deferred`` flag."""

    class Walker(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: list[tuple[ast.stmt, bool]] = []
            self._depth = 0

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._depth += 1
            self.generic_visit(node)
            self._depth -= 1

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_If(self, node: ast.If) -> None:
            # `if TYPE_CHECKING:` bodies never execute at runtime, so
            # their imports are annotation-only and outside the contract.
            if _is_type_checking(node.test):
                for orelse in node.orelse:
                    self.visit(orelse)
                return
            self.generic_visit(node)

        def visit_Import(self, node: ast.Import) -> None:
            self.found.append((node, self._depth > 0))

        def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
            self.found.append((node, self._depth > 0))

    walker = Walker()
    walker.visit(tree)
    yield from walker.found


def _allowed_deferred(importer: str, target: str) -> bool:
    return any(
        importer.startswith(src) and target.startswith(dst)
        for src, dst in DEFERRED_OK
    )


def check_layering(module: ModuleInfo) -> Iterator[Violation]:
    """Flag imports that point up (or sideways across) the layer DAG."""
    importer = module.name
    importer_rank = _rank(importer) if importer.startswith("repro") else None
    if importer_rank is None:
        return
    importer_pkg = _package_of(importer)
    for node, deferred in _iter_imports(module.tree):
        for target in _resolve_targets(node, importer):
            target_pkg = _package_of(target)
            if target_pkg == importer_pkg:
                continue
            target_rank = _rank(target)
            if target_rank is None:
                continue
            if target_rank < importer_rank:
                continue
            if deferred and _allowed_deferred(importer, target):
                continue
            direction = "deferred " if deferred else ""
            yield Violation(
                rule=RULE,
                path=module.relpath,
                line=node.lineno,
                message=(
                    f"{direction}import edge {importer} -> {target} violates "
                    f"the layering contract ({importer_pkg}[{importer_rank}] "
                    f"may only import layers below it; {target_pkg} is "
                    f"[{target_rank}])"
                ),
            )
