"""Cache-lock discipline: memo writes must happen under the owner's lock.

The serving layer shares :class:`~repro.core.session.Session` (and its
:class:`~repro.core.session.Preprocessing` cache), the session pool, the
scheduler and feed objects across worker threads. Their thread-safety
story is lock-guarded check-compute-store accessors — a single memo
write outside the lock reintroduces the duplicated-work/torn-state race
class that the concurrency tests (``tests/test_serve_concurrent.py``)
can only catch probabilistically.

The rule: in any class whose ``__init__`` creates a ``threading.Lock``
or ``threading.RLock`` on ``self``, every write to an attribute that
``__init__`` declares (plain assignment, augmented assignment, or a
subscript/attribute store through it) occurring outside ``__init__``
must be lexically guarded by that lock — either inside a ``with
self.<lock>:`` block or in a function that explicitly calls
``self.<lock>.acquire(...)`` on an earlier line (the try/finally
pattern used where non-blocking acquisition matters).

Methods whose name ends in ``_locked`` are exempt: the suffix is this
repository's convention for "caller holds the lock", and every call
site of such a method is itself subject to the rule.

Intentional exceptions carry a ``# repro-lint: ignore=locking`` comment
on the offending line, turning the waiver into a visible artefact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from tools.repro_lint.core import ModuleInfo, Violation

RULE = "locking"

#: ``threading`` primitives plus the labelled factories from
#: ``repro.concurrency`` (and ``Condition``, whose wrapped lock guards
#: state the same way a bare lock does).
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "make_lock", "make_rlock"}


@dataclass
class _LockedClass:
    name: str
    lock_attr: str
    protected: set[str] = field(default_factory=set)


def _lock_factory_name(call: ast.expr) -> str | None:
    """``threading.RLock()``/``Lock()`` -> factory name, else ``None``."""
    if not isinstance(call, ast.Call):
        return None
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr in _LOCK_FACTORIES:
        if isinstance(fn.value, ast.Name) and fn.value.id == "threading":
            return fn.attr
    if isinstance(fn, ast.Name) and fn.id in _LOCK_FACTORIES:
        return fn.id
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_attr(target: ast.expr) -> str | None:
    """The ``self`` attribute a store target writes through, if any.

    Covers ``self.x = ...``, ``self.x[...] = ...`` and
    ``self.x.y = ...`` (one level of indirection — a store through a
    memo attribute mutates the shared structure it names).
    """
    if isinstance(target, (ast.Subscript, ast.Attribute)) and not (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return _written_attr(target.value)
    return _self_attr(target)


def _scan_init(cls: ast.ClassDef) -> _LockedClass | None:
    """Detect a locked class and collect its protected attributes."""
    init = next(
        (
            node
            for node in cls.body
            if isinstance(node, ast.FunctionDef) and node.name == "__init__"
        ),
        None,
    )
    if init is None:
        return None
    lock_attr: str | None = None
    declared: set[str] = set()
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if _lock_factory_name(node.value) and lock_attr is None:
                    lock_attr = attr
                else:
                    declared.add(attr)
        elif isinstance(node, ast.AnnAssign):
            attr = _self_attr(node.target)
            if attr is None:
                continue
            if node.value is not None and _lock_factory_name(node.value):
                if lock_attr is None:
                    lock_attr = attr
            else:
                declared.add(attr)
    if lock_attr is None:
        return None
    return _LockedClass(name=cls.name, lock_attr=lock_attr, protected=declared)


def _with_holds_lock(node: ast.With, lock_attr: str) -> bool:
    return any(
        _self_attr(item.context_expr) == lock_attr for item in node.items
    )


def _acquire_lines(fn: ast.FunctionDef, lock_attr: str) -> list[int]:
    """Lines where the function calls ``self.<lock>.acquire(...)``."""
    lines = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr == "acquire"
                and _self_attr(callee.value) == lock_attr
            ):
                lines.append(node.lineno)
    return lines


def _iter_unguarded_writes(
    fn: ast.FunctionDef, locked: _LockedClass
) -> Iterator[tuple[int, str]]:
    """Yield (line, attr) for protected writes outside the lock."""
    acquires = _acquire_lines(fn, locked.lock_attr)

    def walk(node: ast.AST, guarded: bool) -> Iterator[tuple[int, str]]:
        if isinstance(node, ast.With) and _with_holds_lock(
            node, locked.lock_attr
        ):
            guarded = True
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            attr = _written_attr(target)
            if attr is not None and attr in locked.protected and not guarded:
                if not any(line <= node.lineno for line in acquires):
                    yield node.lineno, attr
        for child in ast.iter_child_nodes(node):
            yield from walk(child, guarded)

    yield from walk(fn, False)


def check_locking(module: ModuleInfo) -> Iterator[Violation]:
    """Flag writes to lock-owned memo attributes outside their lock."""
    for cls in [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]:
        locked = _scan_init(cls)
        if locked is None:
            continue
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name == "__init__":
                continue
            if fn.name.endswith("_locked"):
                # Convention: the caller holds the lock; the call sites
                # of *_locked helpers are themselves checked.
                continue
            for line, attr in _iter_unguarded_writes(fn, locked):
                yield Violation(
                    rule=RULE,
                    path=module.relpath,
                    line=line,
                    message=(
                        f"{locked.name}.{fn.name} writes self.{attr} outside "
                        f"'with self.{locked.lock_attr}' — memo attributes of "
                        "a lock-guarded class must only be written under the "
                        "lock"
                    ),
                )
