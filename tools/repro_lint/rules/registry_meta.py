"""Registry metadata consistency (runtime introspection).

The solver registry is the single source of capability truth: the
scheduler admits deadlines, the task layer opens engines and the serving
layer forwards budgets based purely on :class:`repro.core.registry.Method`
metadata. Inconsistent metadata fails at the worst possible time — a
request deep inside a worker thread — so this rule imports the live
registry and checks the invariants statically checkable nowhere else:

* tags are lowercase and summaries non-empty;
* every options class derives from ``SolveOptions`` with fully
  defaulted fields (``parse_options({})`` must succeed);
* ``supports_warm_start`` implies ``resumable`` — warm starts are only
  deliverable through the task API, which requires an engine;
* every engine factory has the canonical signature ``(prep, k, opts)``
  plus a ``warm_start`` keyword, and nothing else — option dataclasses,
  not factory kwargs, are where method knobs live;
* ``supports_time_budget`` implies the options class actually exposes a
  ``time_budget`` option;
* ``deadline_safe`` is reserved for heuristics (an exact solver's
  runtime is never predictably bounded).

Runs against :data:`repro.core.registry.REGISTRY` by default; the test
suite also points it at synthetic registries to prove each check fires.
"""

from __future__ import annotations

import inspect
import sys
from pathlib import Path
from typing import Iterable, Iterator

from tools.repro_lint.core import Violation

RULE = "registry"

_REGISTRY_PATH = "src/repro/core/registry.py"


def check_registry_object(registry: object, path: str = _REGISTRY_PATH) -> Iterator[Violation]:
    """Check one registry instance (separated out for fixture tests)."""
    from repro.core.registry import SolveOptions

    def violation(message: str) -> Violation:
        return Violation(rule=RULE, path=path, line=1, message=message)

    for method in registry:  # type: ignore[attr-defined]
        tag = method.tag
        if tag != tag.lower():
            yield violation(f"method tag {tag!r} must be lowercase")
        if not (method.summary or "").strip():
            yield violation(f"method {tag!r} has an empty summary")
        if not (
            isinstance(method.options_cls, type)
            and issubclass(method.options_cls, SolveOptions)
        ):
            yield violation(
                f"method {tag!r}: options class "
                f"{method.options_cls!r} must subclass SolveOptions"
            )
            continue
        try:
            method.options_cls()
        except TypeError:
            yield violation(
                f"method {tag!r}: options class "
                f"{method.options_cls.__name__} must default every field "
                "(parse_options({}) has to succeed)"
            )
        if method.supports_warm_start and not method.resumable:
            yield violation(
                f"method {tag!r} declares supports_warm_start without a "
                "resumable engine — warm starts are only deliverable "
                "through Session.task"
            )
        if method.supports_time_budget and "time_budget" not in (
            method.options_cls.option_names()
        ):
            yield violation(
                f"method {tag!r} declares supports_time_budget but its "
                f"options class {method.options_cls.__name__} exposes no "
                "'time_budget' option"
            )
        if method.deadline_safe and method.exact:
            yield violation(
                f"method {tag!r} is exact but declared deadline_safe — "
                "exact solvers have no predictable runtime bound"
            )
        if method.engine is not None:
            yield from _check_engine_signature(method, violation)


def _check_engine_signature(method: object, violation) -> Iterator[Violation]:
    try:
        signature = inspect.signature(method.engine)  # type: ignore[attr-defined]
    except (TypeError, ValueError):
        yield violation(
            f"method {method.tag!r}: engine factory is not introspectable"  # type: ignore[attr-defined]
        )
        return
    tag = method.tag  # type: ignore[attr-defined]
    params = list(signature.parameters.values())
    positional = [
        p
        for p in params
        if p.kind
        in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        and p.name != "warm_start"
    ]
    if len(positional) != 3:
        yield violation(
            f"method {tag!r}: engine factory must take exactly "
            f"(prep, k, opts) positionally, got "
            f"{[p.name for p in positional]}"
        )
    if "warm_start" not in signature.parameters:
        yield violation(
            f"method {tag!r}: engine factory must accept a 'warm_start' "
            "keyword (pass-through of Session.task's seed)"
        )
    else:
        warm = signature.parameters["warm_start"]
        if warm.default is inspect.Parameter.empty:
            yield violation(
                f"method {tag!r}: engine factory's 'warm_start' must "
                "default to None"
            )
    extras = [
        p.name
        for p in params
        if p.name not in ("warm_start",)
        and p not in positional
        and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
    ]
    if extras:
        yield violation(
            f"method {tag!r}: engine factory declares extra kwargs "
            f"{extras} — method knobs belong on the options dataclass, "
            "which the registry validates up front"
        )


def check_registry(root: Path) -> Iterable[Violation]:
    """Project-scope entry point: check the live package registry."""
    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.core.registry import REGISTRY

    return list(check_registry_object(REGISTRY))
