"""Stats-key discipline: counters must come from the canonical key set.

Every engine, maintainer and serving component reports progress through
string-keyed ``stats`` dictionaries that flow — unvalidated — into
NDJSON responses, benchmark CSVs and the CLI's ``--json`` output.
Consumers aggregate by key, so a typo (``"cache_hit"`` for
``"cache_hits"``) silently forks a counter instead of failing: the old
key flatlines, the new one is invisible to every existing dashboard or
test assertion.

The rule collects, per module, every string literal used as a ``stats``
key — subscript reads/writes (``stats["x"]``, ``self.stats["x"]``),
``stats.get("x", ...)`` / ``stats.setdefault("x", ...)`` /
``stats.update({...})`` calls, and the keys of dict literals assigned
to a ``stats`` name or passed as a ``stats=`` keyword — and requires
each to appear in :data:`CANONICAL_KEYS`. Introducing a genuinely new counter is a
one-line addition to that set, which makes the vocabulary growth
reviewable instead of accidental.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import ModuleInfo, Violation

RULE = "statskeys"

#: Every stats counter the repository's consumers know about. Grouped by
#: producer; keep sorted within each group.
CANONICAL_KEYS: frozenset[str] = frozenset(
    {
        # Preprocessing / session cache (repro.core.session)
        "cache_hits",
        "clique_listings",
        "core_decompositions",
        "count_passes",
        "csr_builds",
        "orientations",
        "score_passes",
        # Greedy engines (repro.core.lightweight, repro.core.basic)
        "branches_pruned",
        "findmin_calls",
        "findone_calls",
        "heap_pops",
        "heap_pushes",
        "nodes_processed",
        "stale_pops",
        "warm_seeded",
        # Exact solvers (repro.core.exact, repro.core.exact_bb)
        "clique_graph_edges",
        "clique_graph_nodes",
        "nodes_expanded",
        # Clique store (repro.cliques.store_all)
        "cliques_stored",
        "cliques_taken",
        # Local-search swaps (repro.core / repro.dynamic.swap)
        "pops",
        "swap_gain",
        "swaps",
        # Dynamic maintainer (repro.dynamic.maintainer)
        "applied",
        "batches",
        "coalesced_updates",
        "deletions",
        "destroyed_cliques",
        "direct_additions",
        "flushes",
        "insertions",
        # Batched-update buffer flush triggers
        "age_flushes",
        "size_flushes",
        # Serving layer (repro.serve.pool / scheduler / feeds)
        "cancelled",
        "completed",
        "deadline_partials",
        "evictions",
        "failed",
        "hits",
        "misses",
        "preemptions",
        "pushed",
        "shed_deadline",
        "shed_overload",
        "submitted",
        # Process tier (repro.parallel)
        "incumbent_broadcasts",
        "steps_dispatched",
        "subtree_tasks",
        "worker_restarts",
        # Bench runner summaries (repro.bench.runner)
        "cells_error",
        "cells_ok",
        "seconds_total",
        "suites_run",
    }
)


def _is_stats_expr(node: ast.expr) -> bool:
    """Whether ``node`` names a stats mapping (``stats``/``self.stats``…)."""
    if isinstance(node, ast.Name):
        return "stats" in node.id
    if isinstance(node, ast.Attribute):
        return "stats" in node.attr
    return False


def _iter_key_literals(tree: ast.Module) -> Iterator[tuple[int, str]]:
    """Yield (line, key) for every string literal used as a stats key."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and _is_stats_expr(node.value):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                yield key.lineno, key.value
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in ("get", "setdefault", "pop")
                and _is_stats_expr(fn.value)
                and node.args
            ):
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    yield key.lineno, key.value
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "update"
                and _is_stats_expr(fn.value)
                and node.args
                and isinstance(node.args[0], ast.Dict)
            ):
                yield from _dict_keys(node.args[0])
            for kw in node.keywords:
                if kw.arg == "stats" and isinstance(kw.value, ast.Dict):
                    yield from _dict_keys(kw.value)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            if any(_is_stats_expr(target) for target in node.targets):
                yield from _dict_keys(node.value)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.value, ast.Dict)
            and _is_stats_expr(node.target)
        ):
            yield from _dict_keys(node.value)


def _dict_keys(node: ast.Dict) -> Iterator[tuple[int, str]]:
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            yield key.lineno, key.value


def check_stats_keys(module: ModuleInfo) -> Iterator[Violation]:
    """Flag stats keys outside the canonical vocabulary."""
    if not module.name.startswith("repro"):
        return
    for line, key in _iter_key_literals(module.tree):
        if key in CANONICAL_KEYS:
            continue
        yield Violation(
            rule=RULE,
            path=module.relpath,
            line=line,
            message=(
                f"stats key {key!r} is not in the canonical key set — add "
                "it to tools.repro_lint.rules.stats_keys.CANONICAL_KEYS if "
                "it is a deliberate new counter, or fix the typo"
            ),
        )
